"""The binary trie of IPD ranges.

"This method treats the Internet's address space as a binary tree, with
each node representing a CIDR range" (§3.1).  The trie starts as a single
/0 leaf and is refined by splits and coarsened by joins as traffic
dictates.  Leaves carry range state; internal nodes only route lookups.

A small masked-IP → leaf cache accelerates ingest: source prefixes repeat
heavily in real traffic, and a cache hit replaces the 28-step bit walk
with one dictionary probe.  Cache entries self-invalidate — a split turns
the cached node into an internal node, and joins mark detached nodes dead.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Union

from .iputil import Prefix
from .state import ClassifiedState, UnclassifiedState

__all__ = ["RangeNode", "RangeTree"]

RangeState = Union[UnclassifiedState, ClassifiedState]


class RangeNode:
    """One node of the trie: a CIDR range, either leaf or internal."""

    __slots__ = ("prefix", "left", "right", "state", "dead")

    def __init__(self, prefix: Prefix, state: Optional[RangeState] = None) -> None:
        self.prefix = prefix
        self.left: Optional[RangeNode] = None
        self.right: Optional[RangeNode] = None
        self.state: Optional[RangeState] = state if state is not None else UnclassifiedState()
        self.dead = False

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def is_classified(self) -> bool:
        return isinstance(self.state, ClassifiedState)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "node"
        return f"<RangeNode {self.prefix} {kind}>"


class RangeTree:
    """Binary trie over one address family, rooted at /0."""

    def __init__(self, version: int) -> None:
        self.version = version
        self.root = RangeNode(Prefix.root(version))
        self._bits = self.root.prefix.bits
        self._cache: dict[int, RangeNode] = {}
        #: number of splits/joins performed (resource-metric bookkeeping)
        self.split_count = 0
        self.join_count = 0

    # -- lookup -------------------------------------------------------------

    def lookup_leaf(self, ip_value: int) -> RangeNode:
        """Return the unique leaf whose range contains *ip_value*."""
        cached = self._cache.get(ip_value)
        if cached is not None and cached.left is None and not cached.dead:
            return cached
        node = self.root
        bits = self._bits
        while node.left is not None:
            bit_index = bits - node.prefix.masklen - 1
            if (ip_value >> bit_index) & 1:
                node = node.right  # type: ignore[assignment]
            else:
                node = node.left
        self._cache[ip_value] = node
        return node

    # -- structure changes ----------------------------------------------------

    def split(self, node: RangeNode) -> tuple[RangeNode, RangeNode]:
        """Split a leaf into its two halves, redistributing per-IP state.

        Only unclassified leaves are split (a classified range has no
        per-IP detail left to redistribute, and the algorithm never needs
        to split one: it drops the classification first).
        """
        if not node.is_leaf:
            raise ValueError(f"cannot split internal node {node.prefix}")
        state = node.state
        if not isinstance(state, UnclassifiedState):
            raise ValueError(f"cannot split classified range {node.prefix}")
        left_prefix, right_prefix = node.prefix.children()
        left = RangeNode(left_prefix)
        right = RangeNode(right_prefix)
        boundary = right_prefix.value
        for masked_ip, by_ingress in state.per_ip.items():
            child = right if masked_ip >= boundary else left
            child_state = child.state
            assert isinstance(child_state, UnclassifiedState)
            child_state.per_ip[masked_ip] = by_ingress
            child_state.last_seen[masked_ip] = state.last_seen[masked_ip]
            child_state.total += sum(by_ingress.values())
        node.left = left
        node.right = right
        node.state = None
        self.split_count += 1
        return left, right

    def join(self, parent: RangeNode, state: RangeState) -> RangeNode:
        """Collapse an internal node's two leaf children into one leaf.

        The caller supplies the merged *state* (the classifier decides
        how counters combine).  The detached children are marked dead so
        stale cache entries cannot resurrect them.
        """
        if parent.is_leaf:
            raise ValueError(f"cannot join leaf {parent.prefix}")
        left, right = parent.left, parent.right
        assert left is not None and right is not None
        if not (left.is_leaf and right.is_leaf):
            raise ValueError(f"children of {parent.prefix} are not both leaves")
        left.dead = True
        right.dead = True
        parent.left = None
        parent.right = None
        parent.state = state
        self.join_count += 1
        return parent

    # -- iteration -------------------------------------------------------------

    def leaves(self) -> Iterator[RangeNode]:
        """Yield all leaves in address order (iterative DFS)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.left is None:
                yield node
            else:
                # push right first so left pops first (address order)
                stack.append(node.right)  # type: ignore[arg-type]
                stack.append(node.left)

    def internal_nodes_postorder(self) -> Iterator[RangeNode]:
        """Yield internal nodes children-first (for bottom-up joins)."""
        stack: list[tuple[RangeNode, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if node.left is None:
                continue
            if expanded:
                yield node
            else:
                stack.append((node, True))
                stack.append((node.right, False))  # type: ignore[arg-type]
                stack.append((node.left, False))

    def leaf_count(self) -> int:
        return sum(1 for __ in self.leaves())

    def classified_leaves(self) -> Iterator[RangeNode]:
        return (leaf for leaf in self.leaves() if leaf.is_classified)

    # -- maintenance -------------------------------------------------------------

    def prune(self, removable: Callable[[RangeNode], bool]) -> int:
        """Collapse sibling leaves that are both *removable*.

        Used to reclaim trie structure left behind by expired ranges:
        when both children of a node are removable leaves, the node
        reverts to a single empty unclassified leaf.  Returns the number
        of collapses performed (cascades bottom-up in one call).
        """
        collapsed = 0
        for parent in list(self.internal_nodes_postorder()):
            left, right = parent.left, parent.right
            if left is None or right is None:
                continue
            if not (left.is_leaf and right.is_leaf):
                continue
            if removable(left) and removable(right):
                left.dead = True
                right.dead = True
                parent.left = None
                parent.right = None
                parent.state = UnclassifiedState()
                collapsed += 1
        return collapsed

    def clear_cache(self) -> None:
        """Drop the masked-IP lookup cache (e.g. between time buckets)."""
        self._cache.clear()

    def cache_size(self) -> int:
        return len(self._cache)
