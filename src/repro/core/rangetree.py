"""The binary trie of IPD ranges.

"This method treats the Internet's address space as a binary tree, with
each node representing a CIDR range" (§3.1).  The trie starts as a single
/0 leaf and is refined by splits and coarsened by joins as traffic
dictates.  Leaves carry range state; internal nodes only route lookups.

A bounded masked-IP → leaf LRU cache accelerates ingest: source prefixes
repeat heavily in real traffic, and a cache hit replaces the 28-step bit
walk with one dictionary probe.  Cache entries self-invalidate — a split
turns the cached node into an internal node, and joins mark detached
nodes dead — so the cache survives across sweeps and only sheds entries
by LRU eviction once ``cache_capacity`` is reached (an unbounded cache
is a memory blow-up under address-scan workloads: one entry per distinct
masked source).

The tree also keeps the incremental bookkeeping the sweep machinery
needs to avoid full-trie walks:

* ``leaf_count()`` / ``classified_count()`` are O(1) counters maintained
  by split/join/prune and by state assignment.
* ``dirty`` is the set of leaves whose state changed since the last
  :meth:`drain_dirty` — the sweep visits those instead of every leaf.
* an expiry min-heap orders unclassified leaves by ``oldest_seen`` so a
  sweep can find the leaves that may hold expirable sources without
  touching idle ones.  Heap entries are lazy: each records the bound it
  was pushed at, and entries whose node died, split, or was re-pushed at
  a different bound are skipped on pop.

Every mutation of a node's state — including direct assignment like
``leaf.state = ClassifiedState(...)`` — funnels through the ``state``
property setter, which notifies the owning tree so the counters and
dirty set can never go stale.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Callable, Iterable, Iterator, Optional, Union

from ..devtools.markers import hot_path
from .iputil import Prefix
from .state import ClassifiedState, DelegatedState, UnclassifiedState

__all__ = ["RangeNode", "RangeTree", "DEFAULT_CACHE_CAPACITY"]

RangeState = Union[UnclassifiedState, ClassifiedState, DelegatedState]

#: default bound on the masked-IP → leaf cache (entries, not bytes);
#: at ~100 B/entry this caps the cache near 25 MB per family
DEFAULT_CACHE_CAPACITY = 1 << 18

_INF = float("inf")


class RangeNode:
    """One node of the trie: a CIDR range, either leaf or internal."""

    __slots__ = ("prefix", "left", "right", "_state", "dead", "tree", "parent")

    def __init__(
        self,
        prefix: Prefix,
        state: Optional[RangeState] = None,
        tree: "Optional[RangeTree]" = None,
        parent: "Optional[RangeNode]" = None,
    ) -> None:
        self.prefix = prefix
        self.left: Optional[RangeNode] = None
        self.right: Optional[RangeNode] = None
        self.tree = tree
        self.parent = parent
        self.dead = False
        self._state: Optional[RangeState] = (
            state if state is not None else UnclassifiedState()
        )
        if tree is not None:
            tree._note_state_change(self, None, self._state)

    @property
    def state(self) -> Optional[RangeState]:
        return self._state

    @state.setter
    def state(self, value: Optional[RangeState]) -> None:
        old = self._state
        self._state = value
        if self.tree is not None:
            self.tree._note_state_change(self, old, value)

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    @property
    def is_classified(self) -> bool:
        return isinstance(self._state, ClassifiedState)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf else "node"
        return f"<RangeNode {self.prefix} {kind}>"


class RangeTree:
    """Binary trie over one address family, rooted at /0.

    The sharded runtime roots shard tries at a depth-``k`` subtree
    instead: pass *root_prefix* to cover only that CIDR range.  All
    operations (lookup, split, join, prune) are relative to the root, so
    a rooted tree behaves exactly like the corresponding subtree of a
    /0 tree.
    """

    def __init__(
        self,
        version: int,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        root_prefix: Optional[Prefix] = None,
    ) -> None:
        if root_prefix is not None and root_prefix.version != version:
            raise ValueError(
                f"root prefix {root_prefix} does not match IPv{version}"
            )
        self.version = version
        self._leaf_count = 0
        #: leaves currently owned by another engine (DelegatedState)
        self._delegated_count = 0
        self._classified: set[RangeNode] = set()
        #: leaves whose state changed since the last :meth:`drain_dirty`
        self.dirty: set[RangeNode] = set()
        self._expiry_heap: list[tuple[float, int, RangeNode]] = []
        self._heap_seq = 0
        self.root = RangeNode(
            root_prefix if root_prefix is not None else Prefix.root(version),
            tree=self,
        )
        self._leaf_count = 1
        self._bits = self.root.prefix.bits
        self.cache_capacity = cache_capacity
        self._cache: OrderedDict[int, RangeNode] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        #: number of splits/joins performed (resource-metric bookkeeping)
        self.split_count = 0
        self.join_count = 0

    # -- lookup -------------------------------------------------------------

    @hot_path
    def lookup_leaf(self, ip_value: int) -> RangeNode:
        """Return the unique leaf whose range contains *ip_value*."""
        cache = self._cache
        cached = cache.get(ip_value)
        if cached is not None:
            if cached.left is None and not cached.dead:
                self.cache_hits += 1
                cache.move_to_end(ip_value)
                return cached
            del cache[ip_value]
        self.cache_misses += 1
        node = self.root
        bits = self._bits
        while node.left is not None:
            bit_index = bits - node.prefix.masklen - 1
            if (ip_value >> bit_index) & 1:
                # internal nodes always have both children; a per-step
                # assert would tax the hottest loop in the engine
                node = node.right  # type: ignore[assignment]
            else:
                node = node.left
        cache[ip_value] = node
        if len(cache) > self.cache_capacity:
            cache.popitem(last=False)
            self.cache_evictions += 1
        return node

    # -- incremental bookkeeping ------------------------------------------------

    def _note_state_change(
        self,
        node: RangeNode,
        old: Optional[RangeState],
        new: Optional[RangeState],
    ) -> None:
        """Keep counters, the dirty set and the expiry heap in sync.

        Called by the ``RangeNode.state`` setter on every assignment, so
        even tests that classify a leaf directly keep the tree honest.
        """
        if isinstance(old, ClassifiedState):
            self._classified.discard(node)
        elif isinstance(old, DelegatedState):
            self._delegated_count -= 1
        if new is None:
            # the node became internal (split) — it is no longer a leaf
            self.dirty.discard(node)
            return
        if node.dead:
            return
        if isinstance(new, DelegatedState):
            # the leaf's state now lives in another engine: inert here
            self._delegated_count += 1
            self.dirty.discard(node)
            return
        if isinstance(new, ClassifiedState):
            self._classified.add(node)
            self.dirty.add(node)
        else:
            self.dirty.add(node)
            if new.oldest_seen != _INF:
                self.schedule_expiry(node)

    def _detach(self, node: RangeNode) -> None:
        """Mark a removed (joined/pruned) leaf dead and forget it."""
        node.dead = True
        self.dirty.discard(node)
        self._classified.discard(node)
        if isinstance(node._state, DelegatedState):
            self._delegated_count -= 1

    @hot_path
    def schedule_expiry(self, node: RangeNode) -> None:
        """(Re-)register a leaf on the expiry heap at its current bound.

        No-op when the leaf is already scheduled at the same bound, so
        repeated ingest into a warm leaf costs one comparison.
        """
        state = node._state
        if not isinstance(state, UnclassifiedState):
            return
        bound = state.oldest_seen
        if bound == _INF or state.heap_bound == bound:
            return
        state.heap_bound = bound
        self._heap_seq += 1
        heapq.heappush(self._expiry_heap, (bound, self._heap_seq, node))

    @hot_path
    def pop_expiry_due(self, cutoff: float) -> list[RangeNode]:
        """Pop every leaf whose oldest sample may predate *cutoff*.

        Stale heap entries (dead/split nodes, superseded bounds) are
        discarded lazily.  Popped leaves are unscheduled; the sweep
        re-schedules the survivors after expiry re-tightens their bound.
        """
        heap = self._expiry_heap
        due: list[RangeNode] = []
        while heap and heap[0][0] < cutoff:
            bound, __, node = heapq.heappop(heap)
            state = node._state
            if (
                node.dead
                or node.left is not None
                or not isinstance(state, UnclassifiedState)
                or state.heap_bound != bound
                or not state.per_ip
            ):
                continue
            state.heap_bound = _INF
            due.append(node)
        return due

    @hot_path
    def drain_dirty(self) -> set[RangeNode]:
        """Return the leaves touched since the last drain and reset the set."""
        dirty = self.dirty
        self.dirty = set()
        return dirty

    # -- structure changes ----------------------------------------------------

    def split(self, node: RangeNode) -> tuple[RangeNode, RangeNode]:
        """Split a leaf into its two halves, redistributing per-IP state.

        Only unclassified leaves are split (a classified range has no
        per-IP detail left to redistribute, and the algorithm never needs
        to split one: it drops the classification first).
        """
        if not node.is_leaf:
            raise ValueError(f"cannot split internal node {node.prefix}")
        state = node._state
        if not isinstance(state, UnclassifiedState):
            raise ValueError(f"cannot split classified range {node.prefix}")
        left_prefix, right_prefix = node.prefix.children()
        left = RangeNode(left_prefix, tree=self, parent=node)
        right = RangeNode(right_prefix, tree=self, parent=node)
        boundary = right_prefix.value
        last_seen = state.last_seen
        for masked_ip, by_ingress in state.per_ip.items():
            child_state = (right if masked_ip >= boundary else left)._state
            assert isinstance(child_state, UnclassifiedState)
            child_state.per_ip[masked_ip] = by_ingress
            seen = last_seen[masked_ip]
            child_state.last_seen[masked_ip] = seen
            child_state.total += sum(by_ingress.values())
            child_state.entries += len(by_ingress)
            if seen < child_state.oldest_seen:
                child_state.oldest_seen = seen
        node.left = left
        node.right = right
        node.state = None
        for child in (left, right):
            child_state = child._state
            assert isinstance(child_state, UnclassifiedState)
            self.dirty.add(child)
            if child_state.oldest_seen != _INF:
                self.schedule_expiry(child)
        self._leaf_count += 1
        self.split_count += 1
        return left, right

    def join(self, parent: RangeNode, state: RangeState) -> RangeNode:
        """Collapse an internal node's two leaf children into one leaf.

        The caller supplies the merged *state* (the classifier decides
        how counters combine).  The detached children are marked dead so
        stale cache entries cannot resurrect them.
        """
        if parent.is_leaf:
            raise ValueError(f"cannot join leaf {parent.prefix}")
        left, right = parent.left, parent.right
        assert left is not None and right is not None
        if not (left.is_leaf and right.is_leaf):
            raise ValueError(f"children of {parent.prefix} are not both leaves")
        self._detach(left)
        self._detach(right)
        parent.left = None
        parent.right = None
        parent.state = state
        self._leaf_count -= 1
        self.join_count += 1
        return parent

    def sprout(self, node: RangeNode) -> tuple[RangeNode, RangeNode]:
        """Turn a leaf into an internal node with two fresh empty children.

        Pure structure growth for state restoration: unlike :meth:`split`
        it does not redistribute any observation state and does not count
        as an algorithmic split.  The caller (the state codec's planting
        pass) assigns each child's state afterwards.
        """
        if not node.is_leaf:
            raise ValueError(f"cannot sprout internal node {node.prefix}")
        left_prefix, right_prefix = node.prefix.children()
        left = RangeNode(left_prefix, tree=self, parent=node)
        right = RangeNode(right_prefix, tree=self, parent=node)
        node.left = left
        node.right = right
        node.state = None
        self._leaf_count += 1
        return left, right

    def delegate(self, node: RangeNode) -> UnclassifiedState:
        """Hand an unclassified leaf's state off to another engine.

        Replaces the leaf's state with a :class:`DelegatedState` marker
        and returns the detached observation state so the caller can
        seed the owning engine with it.  Only unclassified leaves are
        delegated (the sharded runtime hands ranges down the moment the
        split cascade reaches the shard depth, before they can classify).
        """
        if not node.is_leaf:
            raise ValueError(f"cannot delegate internal node {node.prefix}")
        state = node._state
        if not isinstance(state, UnclassifiedState):
            raise ValueError(f"cannot delegate {node.prefix}: not unclassified")
        node.state = DelegatedState()
        return state

    def collapse(self, parent: RangeNode,
                 on_remove: Optional[Callable[[RangeNode], None]] = None) -> RangeNode:
        """Public form of the prune collapse for cross-engine callers.

        Turns *parent* (whose children must both be leaves) back into a
        single empty unclassified leaf and returns it.
        """
        if parent.is_leaf:
            raise ValueError(f"cannot collapse leaf {parent.prefix}")
        left, right = parent.left, parent.right
        assert left is not None and right is not None
        if not (left.is_leaf and right.is_leaf):
            raise ValueError(f"children of {parent.prefix} are not both leaves")
        self._collapse(parent, on_remove)
        return parent

    # -- iteration -------------------------------------------------------------

    def leaves(self) -> Iterator[RangeNode]:
        """Yield all leaves in address order (iterative DFS)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            left, right = node.left, node.right
            if left is None:
                yield node
            else:
                assert right is not None  # internal nodes have both children
                # push right first so left pops first (address order)
                stack.append(right)
                stack.append(left)

    def internal_nodes_postorder(self) -> Iterator[RangeNode]:
        """Yield internal nodes children-first (for bottom-up joins)."""
        stack: list[tuple[RangeNode, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            left, right = node.left, node.right
            if left is None:
                continue
            if expanded:
                yield node
            else:
                assert right is not None  # internal nodes have both children
                stack.append((node, True))
                stack.append((right, False))
                stack.append((left, False))

    def leaf_count(self) -> int:
        """Number of *visible* leaves — O(1), maintained incrementally.

        Delegated leaves (ranges owned by another engine) are excluded,
        so the visible leaves of a sharded deployment's aggregator plus
        its shard trees sum to exactly the single-engine count.
        """
        return self._leaf_count - self._delegated_count

    def delegated_count(self) -> int:
        """Number of leaves currently delegated to another engine — O(1)."""
        return self._delegated_count

    def classified_count(self) -> int:
        """Number of classified leaves — O(1)."""
        return len(self._classified)

    def classified_leaves(self) -> list[RangeNode]:
        """The classified leaves in address order."""
        return sorted(self._classified, key=lambda node: node.prefix.value)

    # -- maintenance -------------------------------------------------------------

    def prune(
        self,
        removable: Callable[[RangeNode], bool],
        on_remove: Optional[Callable[[RangeNode], None]] = None,
    ) -> int:
        """Collapse sibling leaves that are both *removable* (full walk).

        When both children of a node are removable leaves, the node
        reverts to a single empty unclassified leaf.  Returns the number
        of collapses performed (cascades bottom-up in one call).
        *on_remove* is invoked for each detached child so callers can
        clean up per-prefix side tables.
        """
        collapsed = 0
        for parent in list(self.internal_nodes_postorder()):
            left, right = parent.left, parent.right
            if left is None or right is None:
                continue
            if not (left.is_leaf and right.is_leaf):
                continue
            if removable(left) and removable(right):
                self._collapse(parent, on_remove)
                collapsed += 1
        return collapsed

    def prune_upward(
        self,
        candidates: Iterable[RangeNode],
        removable: Callable[[RangeNode], bool],
        on_remove: Optional[Callable[[RangeNode], None]] = None,
    ) -> int:
        """Collapse removable sibling pairs reachable from *candidates*.

        The incremental counterpart of :meth:`prune`: instead of walking
        the whole trie, start from the leaves known to have just become
        removable and cascade upward through their ancestors.  Produces
        the same collapses as a full walk, because a pair can only become
        collapsible when one of its members changes — and every change
        puts that member in the candidate set.
        """
        collapsed = 0
        for leaf in candidates:
            if leaf.dead:
                continue  # already collapsed via an earlier candidate
            parent = leaf.parent
            while parent is not None:
                left, right = parent.left, parent.right
                if left is None or right is None:
                    break
                if not (left.is_leaf and right.is_leaf):
                    break
                if not (removable(left) and removable(right)):
                    break
                self._collapse(parent, on_remove)
                collapsed += 1
                parent = parent.parent
        return collapsed

    def _collapse(
        self,
        parent: RangeNode,
        on_remove: Optional[Callable[[RangeNode], None]] = None,
    ) -> None:
        """Turn *parent* back into a single empty unclassified leaf."""
        left, right = parent.left, parent.right
        assert left is not None and right is not None
        for child in (left, right):
            self._detach(child)
            if on_remove is not None:
                on_remove(child)
        parent.left = None
        parent.right = None
        parent.state = UnclassifiedState()
        self._leaf_count -= 1

    def clear_cache(self) -> None:
        """Drop the masked-IP lookup cache (e.g. between time buckets)."""
        self._cache.clear()

    def cache_size(self) -> int:
        return len(self._cache)
