"""Bundling of same-router interfaces into logical ingresses.

The paper (§3.2): "Special handling is needed for evenly distributed
traffic across multiple router interfaces, where they are bundled as a
single logical ingress (called *bundles*)."  LAGs and ECMP across
parallel interfaces of one router would otherwise keep every such range
below the dominance threshold ``q`` forever.

Bundling only ever groups interfaces of the *same* router — balancing
across different routers is deliberately out of scope (§5.8).
"""

from __future__ import annotations

from typing import Mapping

from ..topology.elements import IngressPoint

__all__ = ["bundle_candidates", "make_bundle", "dominant_ingress"]


def make_bundle(router: str, interface_names: list[str]) -> IngressPoint:
    """Build the canonical logical ingress for a set of interfaces."""
    if len(interface_names) == 1:
        return IngressPoint(router, interface_names[0])
    return IngressPoint(router, "+".join(sorted(interface_names)))


def bundle_candidates(
    totals: Mapping[IngressPoint, float],
    min_share: float = 0.20,
) -> dict[IngressPoint, tuple[float, tuple[IngressPoint, ...]]]:
    """Group raw per-interface counters into logical ingress candidates.

    Per router, interfaces that each carry at least *min_share* of the
    router's subtotal are considered an even split and merged into one
    bundle; minor interfaces (below the share) stay separate candidates.

    Returns a mapping from logical ingress to ``(weight, members)`` where
    *members* are the raw single-interface ingresses it aggregates.
    """
    by_router: dict[str, list[tuple[IngressPoint, float]]] = {}
    for ingress, weight in totals.items():
        by_router.setdefault(ingress.router, []).append((ingress, weight))

    candidates: dict[IngressPoint, tuple[float, tuple[IngressPoint, ...]]] = {}
    for router, members in by_router.items():
        subtotal = sum(weight for __, weight in members)
        if subtotal <= 0.0:
            continue
        major = [
            (ingress, weight)
            for ingress, weight in members
            if weight / subtotal >= min_share
        ]
        minor = [
            (ingress, weight)
            for ingress, weight in members
            if weight / subtotal < min_share
        ]
        if len(major) >= 2:
            bundle = make_bundle(router, [ingress.interface for ingress, __ in major])
            weight = sum(weight for __, weight in major)
            candidates[bundle] = (weight, tuple(ingress for ingress, __ in major))
        else:
            minor = members
            major = []
        for ingress, weight in minor:
            candidates[ingress] = (weight, (ingress,))
    return candidates


def dominant_ingress(
    totals: Mapping[IngressPoint, float],
    enable_bundles: bool = True,
    min_share: float = 0.20,
) -> tuple[IngressPoint, float, tuple[IngressPoint, ...]] | None:
    """Pick the logical ingress with the highest weight.

    Returns ``(logical_ingress, share, members)`` where *share* is the
    paper's ``s_ingress`` (weight of the winner over all samples), or
    ``None`` when there are no samples.
    """
    if not totals:
        return None
    if enable_bundles:
        candidates = bundle_candidates(totals, min_share)
    else:
        candidates = {
            ingress: (weight, (ingress,)) for ingress, weight in totals.items()
        }
    grand_total = sum(totals.values())
    if grand_total <= 0.0:
        return None
    winner, (weight, members) = max(
        candidates.items(), key=lambda item: (item[1][0], item[0])
    )
    return winner, weight / grand_total, members
