"""Router-level load-balancing detection (the §5.8 future-work extension).

The deployed IPD deliberately does not handle traffic that a neighbor
balances across two *routers*: detecting it requires correlating source
and destination addresses, and keeping all (src, dst) pairs globally
would add quadratic state.  The paper sketches the extension — "for
example, by tracking the (source, destination) IP address pairs" — and
leaves it to future work.  This module implements that extension with
the state blow-up contained:

* Only ranges that repeatedly fail classification at ``cidr_max`` are
  *suspects*; everything else never pays for pair tracking.
* For suspects, a bounded per-range table of (masked src, masked dst)
  pairs records which ingress router served each pair.
* A suspect is diagnosed as router-level balanced when (i) its traffic
  splits across exactly a few routers with no dominant one, and (ii)
  the split is *per-flow* rather than *per-destination* — i.e. the same
  (src, dst) pair appears on multiple routers.  A per-destination split
  would instead be resolvable by destination-aware mapping, which the
  diagnosis also reports.

Diagnosed ranges can then be classified to a *router group* — the
multi-router analogue of an interface bundle — so operators at least
see "balanced over R1+R2" instead of a permanently unclassified hole.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Protocol, runtime_checkable

from ..core.iputil import Prefix, mask_ip
from ..netflow.records import FlowRecord
from ..topology.elements import IngressPoint

__all__ = ["LBDetectorLike", "LBVerdict", "LBSuspect", "LoadBalanceDetector"]


@runtime_checkable
class LBDetectorLike(Protocol):
    """What the engine requires of an attached load-balance detector.

    :class:`~repro.core.algorithm.IPD` mirrors every ingested flow into
    :meth:`observe` and calls :meth:`watch` when a range keeps failing
    classification at ``cidr_max``.  Any object with these two methods
    can stand in — :class:`LoadBalanceDetector` is the reference
    implementation.
    """

    def observe(self, flow: FlowRecord) -> bool:
        """Feed one flow; True if a watched range consumed it."""
        ...

    def watch(self, prefix: Prefix) -> None:
        """Start (src, dst) pair tracking for a suspect range."""
        ...


@dataclass(frozen=True)
class LBVerdict:
    """Diagnosis of one suspect range."""

    prefix: Prefix
    #: routers involved and their traffic shares
    router_shares: tuple[tuple[str, float], ...]
    #: fraction of (src, dst) pairs observed on more than one router
    pair_overlap: float
    #: True: per-flow balancing over routers (the §5.8 pathology);
    #: False: per-destination split (destination-aware mapping resolves it)
    is_router_balanced: bool

    def router_group(self) -> IngressPoint:
        """A logical multi-router ingress label, e.g. ``R1+R2.balanced``."""
        routers = "+".join(sorted(router for router, __ in self.router_shares))
        return IngressPoint(routers, "balanced")


@dataclass
class LBSuspect:
    """Pair-tracking state for one suspected range."""

    prefix: Prefix
    #: (masked src, masked dst) -> router -> flow count
    pairs: dict[tuple[int, int], Counter] = field(default_factory=dict)
    flows: int = 0

    def add(self, src: int, dst: int, router: str) -> None:
        key = (src, dst)
        by_router = self.pairs.get(key)
        if by_router is None:
            by_router = Counter()
            self.pairs[key] = by_router
        by_router[router] += 1
        self.flows += 1


class LoadBalanceDetector:
    """Sidecar detector fed with flows of persistently unclassified ranges.

    Intended wiring: after each IPD sweep, ranges at ``cidr_max`` that
    have met ``n_cidr`` but failed dominance for ``patience`` consecutive
    sweeps are registered via :meth:`watch`; Stage 1 then mirrors their
    flows (with destinations) into the detector via :meth:`observe`.
    """

    def __init__(
        self,
        dst_masklen: int = 24,
        src_masklen: int = 28,
        max_pairs_per_range: int = 4096,
        min_pairs: int = 24,
        min_router_share: float = 0.25,
        overlap_threshold: float = 0.3,
    ) -> None:
        self.dst_masklen = dst_masklen
        self.src_masklen = src_masklen
        self.max_pairs_per_range = max_pairs_per_range
        self.min_pairs = min_pairs
        self.min_router_share = min_router_share
        self.overlap_threshold = overlap_threshold
        self._suspects: dict[Prefix, LBSuspect] = {}

    # ------------------------------------------------------------------ wiring

    def watch(self, prefix: Prefix) -> None:
        """Start tracking pairs for a persistently unclassifiable range."""
        if prefix not in self._suspects:
            self._suspects[prefix] = LBSuspect(prefix)

    def unwatch(self, prefix: Prefix) -> None:
        self._suspects.pop(prefix, None)

    def watched(self) -> list[Prefix]:
        return list(self._suspects)

    def observe(self, flow: FlowRecord) -> bool:
        """Feed one flow; returns True if it matched a watched range.

        Flows without a destination address are ignored (the §4 privacy
        aggregation strips destinations — running this extension needs
        the richer, pre-anonymization feed, which is why the deployment
        could reasonably choose to live without it).
        """
        if flow.dst_ip is None:
            return False
        for suspect in self._suspects.values():
            if not suspect.prefix.contains_ip(flow.src_ip):
                continue
            if len(suspect.pairs) >= self.max_pairs_per_range:
                return True  # bounded state: stop admitting new pairs
            suspect.add(
                mask_ip(flow.src_ip, self.src_masklen, flow.version),
                mask_ip(flow.dst_ip, self.dst_masklen, flow.version),
                flow.ingress.router,
            )
            return True
        return False

    # ------------------------------------------------------------------ verdicts

    def diagnose(self, prefix: Prefix) -> Optional[LBVerdict]:
        """Judge one watched range; ``None`` while evidence is thin."""
        suspect = self._suspects.get(prefix)
        if suspect is None or len(suspect.pairs) < self.min_pairs:
            return None

        router_totals: Counter = Counter()
        overlapping = 0
        for by_router in suspect.pairs.values():
            router_totals.update(by_router)
            if len(by_router) > 1:
                overlapping += 1

        total = sum(router_totals.values())
        if total == 0:
            return None
        shares = tuple(
            (router, count / total)
            for router, count in router_totals.most_common()
        )
        major = [share for __, share in shares if share >= self.min_router_share]
        pair_overlap = overlapping / len(suspect.pairs)

        is_balanced = len(major) >= 2 and pair_overlap >= self.overlap_threshold
        return LBVerdict(
            prefix=prefix,
            router_shares=shares,
            pair_overlap=pair_overlap,
            is_router_balanced=is_balanced,
        )

    def diagnose_all(self) -> list[LBVerdict]:
        """Verdicts for every watched range with enough evidence."""
        verdicts = []
        for prefix in self._suspects:
            verdict = self.diagnose(prefix)
            if verdict is not None:
                verdicts.append(verdict)
        return verdicts

    def state_size(self) -> int:
        """Tracked (pair, router) entries — the cost §5.8 worries about."""
        return sum(
            len(by_router)
            for suspect in self._suspects.values()
            for by_router in suspect.pairs.values()
        )
