"""Versioned wire codec for externalized engine state.

Everything an :class:`~repro.core.algorithm.IPD` engine knows — trie
topology, per-range observation state, parameters, counters, and the
expiry/dirty bookkeeping the incremental sweep machinery depends on —
round-trips through this module.  The same encoding serves three jobs:

* **Checkpoints** — :mod:`repro.runtime.checkpoint` persists a whole
  engine as one blob and restores it after a restart or worker crash.
* **Shard handoff** — the sharded runtime moves depth-``k`` subtrees
  between the aggregator and shard engines as encoded subtree blobs
  (the generalization of the old in-memory ``seed`` op).
* **Resharding** — a checkpoint taken at one shard count can be carved
  at a different split depth on resume, because the blob is always the
  *merged* single-engine-equivalent image.

Format
------

Compact binary, explicitly versioned::

    magic "IPDS" | u8 blob kind (E=engine, T=subtree) | u16 codec version
    ... kind-specific payload ...

Integers are unsigned LEB128 varints; floats are 8-byte IEEE-754
(big-endian) so every timestamp and counter round-trips bit-exactly —
the engine's float sums are insertion-order dependent, and the codec
preserves both the bits and the dict insertion order.  Ingress points
are interned per blob (a string table built on first use).  Trie nodes
are encoded preorder with a tag byte carrying the node kind and the
leaf's dirty flag.

Decoding a blob whose codec version is newer than this module raises
:class:`IncompatibleStateError`; any structural damage raises
:class:`StateCodecError`.

Layering: this module deliberately does not import the engine.  It
converts between trees and neutral *images* (:class:`NodeImage` /
:class:`TreeImage` / :class:`EngineImage`); :meth:`IPD.from_image`
lives in :mod:`repro.core.algorithm` on top of it.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..topology.elements import IngressPoint
from .iputil import Prefix
from .params import IPDParams, default_decay
from .rangetree import RangeNode, RangeTree
from .state import ClassifiedState, DelegatedState, UnclassifiedState

__all__ = [
    "CODEC_VERSION",
    "StateCodecError",
    "IncompatibleStateError",
    "NodeImage",
    "TreeImage",
    "SubtreeImage",
    "EngineImage",
    "subtree_to_image",
    "tree_to_image",
    "engine_to_image",
    "unclassified_image",
    "plant_image",
    "restore_tree",
    "encode_engine",
    "encode_engine_into",
    "decode_engine",
    "decode_engine_span",
    "encode_subtree",
    "encode_subtree_into",
    "decode_subtree",
]

#: bump when the wire format changes; decoders reject newer versions
CODEC_VERSION = 1

_MAGIC = b"IPDS"
_KIND_ENGINE = 0x45  # 'E'
_KIND_SUBTREE = 0x54  # 'T'

_TAG_INTERNAL = 0
_TAG_UNCLASSIFIED = 1
_TAG_CLASSIFIED = 2
_TAG_DELEGATED = 3
_TAG_DIRTY = 0x10

_FLAG_COUNT_BYTES = 1
_FLAG_ENABLE_BUNDLES = 2
_FLAG_DEFAULT_DECAY = 4

_INF = float("inf")

_pack_float = struct.Struct(">d").pack
_unpack_float = struct.Struct(">d").unpack_from


class StateCodecError(ValueError):
    """A blob could not be encoded or decoded.

    ``offset`` carries the byte position the decoder had reached when
    the damage was detected (``None`` when unknown or not applicable),
    so callers like :class:`~repro.runtime.checkpoint.CheckpointStore`
    can report *where* a blob is corrupt, not just that it is.
    """

    def __init__(self, message: str, offset: "int | None" = None) -> None:
        super().__init__(message)
        self.offset = offset


class IncompatibleStateError(StateCodecError):
    """The blob was written by a newer codec than this build understands."""


# ---------------------------------------------------------------------------
# neutral images
# ---------------------------------------------------------------------------


@dataclass
class NodeImage:
    """One trie node, detached from any tree (picklable, codec-neutral).

    ``kind`` is ``"internal"``, ``"unclassified"``, ``"classified"`` or
    ``"delegated"``; only the fields of the matching kind are meaningful.
    ``sources`` keeps the unclassified per-IP maps as ordered item lists
    because the engine's float sums depend on dict insertion order.
    """

    kind: str
    dirty: bool = False
    left: Optional["NodeImage"] = None
    right: Optional["NodeImage"] = None
    #: unclassified: [(masked_ip, last_seen, [(ingress, weight), ...]), ...]
    sources: Optional[list] = None
    total: float = 0.0
    oldest_seen: float = _INF
    #: classified payload
    ingress: Optional[IngressPoint] = None
    counters: Optional[list] = None
    last_seen: float = 0.0
    classified_at: float = 0.0


@dataclass
class TreeImage:
    """One address family's full trie plus its per-tree counters."""

    version: int
    root_prefix: Prefix
    split_count: int
    join_count: int
    root: NodeImage


@dataclass
class SubtreeImage:
    """A detached subtree, as moved between engines by seed/export ops."""

    prefix: Prefix
    version: int
    split_count: int
    join_count: int
    root: NodeImage


@dataclass
class EngineImage:
    """A whole engine: params, engine counters and every family tree."""

    params: IPDParams
    flows_ingested: int
    bytes_ingested: int
    last_sweep_at: Optional[float]
    cidrmax_failures: dict = field(default_factory=dict)
    trees: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# tree -> image
# ---------------------------------------------------------------------------


def _state_image(state: object, dirty: bool) -> NodeImage:
    if isinstance(state, UnclassifiedState):
        return unclassified_image(state, dirty)
    if isinstance(state, ClassifiedState):
        return NodeImage(
            kind="classified",
            dirty=dirty,
            ingress=state.ingress,
            counters=list(state.counters.items()),
            last_seen=state.last_seen,
            classified_at=state.classified_at,
        )
    if isinstance(state, DelegatedState):
        return NodeImage(kind="delegated")
    raise StateCodecError(f"cannot image state of type {type(state).__name__}")


def unclassified_image(state: UnclassifiedState, dirty: bool) -> NodeImage:
    """Image one unclassified payload (used directly by shard handoff)."""
    last_seen = state.last_seen
    return NodeImage(
        kind="unclassified",
        dirty=dirty,
        sources=[
            (ip, last_seen[ip], list(by_ingress.items()))
            for ip, by_ingress in state.per_ip.items()
        ],
        total=state.total,
        oldest_seen=state.oldest_seen,
    )


def subtree_to_image(
    tree: RangeTree,
    node: RangeNode,
    grafts: Optional[dict] = None,
) -> NodeImage:
    """Convert the subtree rooted at *node* into a detached image.

    *grafts* maps a :class:`Prefix` to a replacement :class:`NodeImage`:
    a delegated leaf at such a prefix is replaced by the graft, which is
    how the sharded coordinator splices shard exports into its portals
    to produce the merged single-engine-equivalent image.
    """
    dirty = tree.dirty

    def convert(current: RangeNode) -> NodeImage:
        if current.left is not None:
            return NodeImage(
                kind="internal",
                left=convert(current.left),
                right=convert(current.right),
            )
        state = current._state
        if (
            grafts is not None
            and isinstance(state, DelegatedState)
            and current.prefix in grafts
        ):
            return grafts[current.prefix]
        return _state_image(state, current in dirty)

    return convert(node)


def tree_to_image(tree: RangeTree, grafts: Optional[dict] = None) -> TreeImage:
    """Image a whole family tree including its split/join counters."""
    return TreeImage(
        version=tree.version,
        root_prefix=tree.root.prefix,
        split_count=tree.split_count,
        join_count=tree.join_count,
        root=subtree_to_image(tree, tree.root, grafts),
    )


def engine_to_image(engine: object) -> EngineImage:
    """Image a plain engine (anything with ``trees`` and the counters)."""
    return EngineImage(
        params=engine.params,
        flows_ingested=engine.flows_ingested,
        bytes_ingested=engine.bytes_ingested,
        last_sweep_at=engine.last_sweep_at,
        cidrmax_failures=dict(engine._cidrmax_failures),
        trees={
            version: tree_to_image(tree)
            for version, tree in engine.trees.items()
        },
    )


# ---------------------------------------------------------------------------
# image -> tree (planting)
# ---------------------------------------------------------------------------


def _state_from_image(
    image: NodeImage,
) -> "UnclassifiedState | ClassifiedState | DelegatedState":
    if image.kind == "unclassified":
        state = UnclassifiedState()
        entries = 0
        for masked_ip, seen, by_ingress in image.sources:
            state.per_ip[masked_ip] = dict(by_ingress)
            state.last_seen[masked_ip] = seen
            entries += len(by_ingress)
        state.entries = entries
        # the stored float, not a recomputed sum: incremental totals are
        # insertion-order dependent and must restore bit-exactly
        state.total = image.total
        state.oldest_seen = image.oldest_seen
        return state
    if image.kind == "classified":
        return ClassifiedState(
            ingress=image.ingress,
            counters=dict(image.counters),
            last_seen=image.last_seen,
            classified_at=image.classified_at,
        )
    if image.kind == "delegated":
        return DelegatedState()
    raise StateCodecError(f"cannot plant node kind {image.kind!r}")


def plant_image(tree: RangeTree, node: RangeNode, image: NodeImage) -> None:
    """Materialize *image* at the leaf *node* of *tree*.

    Structure grows through :meth:`RangeTree.sprout` (no split-count
    side effects) and every leaf state is assigned through the ``state``
    property setter, so leaf/classified counters and expiry scheduling
    rebuild themselves.  The per-leaf dirty flags recorded in the image
    are then applied exactly — a restored engine's next sweep visits
    precisely the leaves the original engine's next sweep would have.
    """
    if node.left is not None:
        raise StateCodecError(f"cannot plant onto internal node {node.prefix}")

    def plant(target: RangeNode, img: NodeImage) -> None:
        if img.kind == "internal":
            left, right = tree.sprout(target)
            plant(left, img.left)
            plant(right, img.right)
            return
        target.state = _state_from_image(img)
        if not img.dirty:
            tree.dirty.discard(target)

    plant(node, image)


def restore_tree(tree: RangeTree, image: TreeImage) -> None:
    """Rebuild a (fresh) family tree from its image, counters included."""
    if tree.root.prefix != image.root_prefix:
        raise StateCodecError(
            f"tree rooted at {tree.root.prefix} cannot restore an image "
            f"rooted at {image.root_prefix}"
        )
    if tree.root.left is not None:
        raise StateCodecError("can only restore into an unsplit tree")
    plant_image(tree, tree.root, image.root)
    tree.split_count = image.split_count
    tree.join_count = image.join_count


# ---------------------------------------------------------------------------
# low-level wire helpers
# ---------------------------------------------------------------------------


class _Writer:
    """Byte-stream writer with per-blob ingress interning.

    All output funnels through the :meth:`raw` / :meth:`byte` sinks so
    :class:`_ViewWriter` can redirect the same encode bodies into a
    caller-provided memoryview without re-implementing the format.
    """

    def __init__(self) -> None:
        self.buffer = bytearray()
        self._ingress_table: dict[IngressPoint, int] = {}

    def raw(self, data: "bytes | bytearray") -> None:
        self.buffer += data

    def byte(self, value: int) -> None:
        self.buffer.append(value)

    def uvarint(self, value: int) -> None:
        if value < 0:
            raise StateCodecError(f"cannot encode negative varint: {value}")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self.byte(byte | 0x80)
            else:
                self.byte(byte)
                return

    def float(self, value: float) -> None:
        self.raw(_pack_float(value))

    def string(self, text: str) -> None:
        raw = text.encode("utf-8")
        self.uvarint(len(raw))
        self.raw(raw)

    def ingress(self, ingress: IngressPoint) -> None:
        index = self._ingress_table.get(ingress)
        if index is not None:
            self.uvarint(index + 1)
            return
        self.uvarint(0)
        self.string(ingress.router)
        self.string(ingress.interface)
        self._ingress_table[ingress] = len(self._ingress_table)

    def prefix(self, prefix: Prefix) -> None:
        self.byte(prefix.version)
        self.uvarint(prefix.masklen)
        self.uvarint(prefix.value)


class _ViewWriter(_Writer):
    """A :class:`_Writer` that encodes into a caller-provided memoryview.

    Zero-copy sibling of the bytearray writer: checkpoint images and
    shard-handoff blobs can be serialized straight into a shared-memory
    ring reservation (or any preallocated buffer).  Overflowing the view
    raises :class:`StateCodecError` before any out-of-bounds write.
    """

    def __init__(self, view: memoryview) -> None:
        super().__init__()
        self.view = view
        self.offset = 0

    def _overflow(self, needed: int) -> StateCodecError:
        return StateCodecError(
            f"encode buffer too small: need {self.offset + needed} bytes, "
            f"have {len(self.view)}"
        )

    def raw(self, data: "bytes | bytearray") -> None:
        end = self.offset + len(data)
        if end > len(self.view):
            raise self._overflow(len(data))
        self.view[self.offset:end] = data
        self.offset = end

    def byte(self, value: int) -> None:
        if self.offset >= len(self.view):
            raise self._overflow(1)
        self.view[self.offset] = value
        self.offset += 1


class _Reader:
    """Mirror of :class:`_Writer`; raises on truncated or damaged input."""

    def __init__(self, data: "bytes | bytearray | memoryview") -> None:
        self.data = data
        self.offset = 0
        self._ingress_table: list[IngressPoint] = []

    def byte(self) -> int:
        if self.offset >= len(self.data):
            raise StateCodecError("truncated blob")
        value = self.data[self.offset]
        self.offset += 1
        return value

    def uvarint(self) -> int:
        value = 0
        shift = 0
        while True:
            byte = self.byte()
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 140:
                raise StateCodecError("varint too long")

    def float(self) -> float:
        if self.offset + 8 > len(self.data):
            raise StateCodecError("truncated blob")
        (value,) = _unpack_float(self.data, self.offset)
        self.offset += 8
        return value

    def string(self) -> str:
        length = self.uvarint()
        end = self.offset + length
        if end > len(self.data):
            raise StateCodecError("truncated blob")
        # bytes() also covers memoryview input (slices of a shm ring)
        text = bytes(self.data[self.offset:end]).decode("utf-8")
        self.offset = end
        return text

    def ingress(self) -> IngressPoint:
        ref = self.uvarint()
        if ref == 0:
            ingress = IngressPoint(self.string(), self.string())
            self._ingress_table.append(ingress)
            return ingress
        index = ref - 1
        if index >= len(self._ingress_table):
            raise StateCodecError(f"dangling ingress reference {index}")
        return self._ingress_table[index]

    def prefix(self) -> Prefix:
        version = self.byte()
        masklen = self.uvarint()
        value = self.uvarint()
        try:
            return Prefix(value, masklen, version)
        except ValueError as exc:  # pragma: no cover - defensive
            raise StateCodecError(f"invalid prefix in blob: {exc}") from exc


def _write_header(writer: _Writer, kind: int) -> None:
    writer.raw(_MAGIC)
    writer.byte(kind)
    writer.raw(struct.pack(">H", CODEC_VERSION))


def _read_header(reader: _Reader, expected_kind: int) -> None:
    if len(reader.data) < 4 or reader.data[:4] != _MAGIC:
        raise StateCodecError("not an IPD state blob (bad magic)")
    reader.offset = 4
    kind = reader.byte()
    if reader.offset + 2 > len(reader.data):
        raise StateCodecError("truncated blob")
    (version,) = struct.unpack_from(">H", reader.data, reader.offset)
    reader.offset += 2
    if version > CODEC_VERSION:
        raise IncompatibleStateError(
            f"blob uses codec version {version}; this build reads "
            f"up to {CODEC_VERSION}"
        )
    if kind != expected_kind:
        raise StateCodecError(
            f"unexpected blob kind {chr(kind)!r}; "
            f"expected {chr(expected_kind)!r}"
        )


# ---------------------------------------------------------------------------
# node stream
# ---------------------------------------------------------------------------

_KIND_TO_TAG = {
    "internal": _TAG_INTERNAL,
    "unclassified": _TAG_UNCLASSIFIED,
    "classified": _TAG_CLASSIFIED,
    "delegated": _TAG_DELEGATED,
}
_TAG_TO_KIND = {tag: kind for kind, tag in _KIND_TO_TAG.items()}


def _write_node(writer: _Writer, image: NodeImage) -> None:
    tag = _KIND_TO_TAG.get(image.kind)
    if tag is None:
        raise StateCodecError(f"unknown node kind {image.kind!r}")
    writer.byte(tag | (_TAG_DIRTY if image.dirty else 0))
    if image.kind == "internal":
        _write_node(writer, image.left)
        _write_node(writer, image.right)
    elif image.kind == "unclassified":
        writer.float(image.total)
        writer.float(image.oldest_seen)
        writer.uvarint(len(image.sources))
        for masked_ip, seen, by_ingress in image.sources:
            writer.uvarint(masked_ip)
            writer.float(seen)
            writer.uvarint(len(by_ingress))
            for ingress, weight in by_ingress:
                writer.ingress(ingress)
                writer.float(weight)
    elif image.kind == "classified":
        writer.ingress(image.ingress)
        writer.float(image.last_seen)
        writer.float(image.classified_at)
        writer.uvarint(len(image.counters))
        for ingress, weight in image.counters:
            writer.ingress(ingress)
            writer.float(weight)
    # delegated: tag only


def _read_node(reader: _Reader) -> NodeImage:
    tag = reader.byte()
    dirty = bool(tag & _TAG_DIRTY)
    kind = _TAG_TO_KIND.get(tag & 0x0F)
    if kind is None:
        raise StateCodecError(f"unknown node tag {tag:#x}")
    if kind == "internal":
        left = _read_node(reader)
        right = _read_node(reader)
        return NodeImage(kind="internal", left=left, right=right)
    if kind == "unclassified":
        total = reader.float()
        oldest_seen = reader.float()
        sources = []
        for __ in range(reader.uvarint()):
            masked_ip = reader.uvarint()
            seen = reader.float()
            by_ingress = [
                (reader.ingress(), reader.float())
                for __ in range(reader.uvarint())
            ]
            sources.append((masked_ip, seen, by_ingress))
        return NodeImage(
            kind="unclassified",
            dirty=dirty,
            sources=sources,
            total=total,
            oldest_seen=oldest_seen,
        )
    if kind == "classified":
        ingress = reader.ingress()
        last_seen = reader.float()
        classified_at = reader.float()
        counters = [
            (reader.ingress(), reader.float())
            for __ in range(reader.uvarint())
        ]
        return NodeImage(
            kind="classified",
            dirty=dirty,
            ingress=ingress,
            counters=counters,
            last_seen=last_seen,
            classified_at=classified_at,
        )
    return NodeImage(kind="delegated")


# ---------------------------------------------------------------------------
# params
# ---------------------------------------------------------------------------


def _write_params(writer: _Writer, params: IPDParams) -> None:
    writer.uvarint(params.cidr_max_v4)
    writer.uvarint(params.cidr_max_v6)
    writer.float(params.n_cidr_factor_v4)
    writer.float(params.n_cidr_factor_v6)
    writer.float(params.q)
    writer.float(params.t)
    writer.float(params.e)
    writer.float(params.drop_threshold)
    writer.float(params.bundle_min_share)
    flags = 0
    if params.count_bytes:
        flags |= _FLAG_COUNT_BYTES
    if params.enable_bundles:
        flags |= _FLAG_ENABLE_BUNDLES
    if params.decay is default_decay:
        flags |= _FLAG_DEFAULT_DECAY
    writer.byte(flags)


def _read_params(reader: _Reader, override: Optional[IPDParams]) -> IPDParams:
    cidr_max_v4 = reader.uvarint()
    cidr_max_v6 = reader.uvarint()
    n_cidr_factor_v4 = reader.float()
    n_cidr_factor_v6 = reader.float()
    q = reader.float()
    t = reader.float()
    e = reader.float()
    drop_threshold = reader.float()
    bundle_min_share = reader.float()
    flags = reader.byte()
    if override is not None:
        return override
    if not flags & _FLAG_DEFAULT_DECAY:
        raise StateCodecError(
            "blob was written with a custom decay function, which is not "
            "serializable; pass params= with the matching decay on restore"
        )
    return IPDParams(
        cidr_max_v4=cidr_max_v4,
        cidr_max_v6=cidr_max_v6,
        n_cidr_factor_v4=n_cidr_factor_v4,
        n_cidr_factor_v6=n_cidr_factor_v6,
        q=q,
        t=t,
        e=e,
        drop_threshold=drop_threshold,
        bundle_min_share=bundle_min_share,
        count_bytes=bool(flags & _FLAG_COUNT_BYTES),
        enable_bundles=bool(flags & _FLAG_ENABLE_BUNDLES),
    )


# ---------------------------------------------------------------------------
# engine blobs
# ---------------------------------------------------------------------------


def _encode_engine_with(writer: _Writer, image: EngineImage) -> None:
    _write_header(writer, _KIND_ENGINE)
    _write_params(writer, image.params)
    writer.uvarint(image.flows_ingested)
    writer.uvarint(image.bytes_ingested)
    if image.last_sweep_at is None:
        writer.byte(0)
    else:
        writer.byte(1)
        writer.float(image.last_sweep_at)
    writer.uvarint(len(image.cidrmax_failures))
    for prefix, failures in image.cidrmax_failures.items():
        writer.prefix(prefix)
        writer.uvarint(failures)
    writer.uvarint(len(image.trees))
    for version in sorted(image.trees):
        tree = image.trees[version]
        writer.byte(version)
        writer.prefix(tree.root_prefix)
        writer.uvarint(tree.split_count)
        writer.uvarint(tree.join_count)
        _write_node(writer, tree.root)


def encode_engine(image: EngineImage) -> bytes:
    """Serialize a whole-engine image to one versioned blob."""
    writer = _Writer()
    _encode_engine_with(writer, image)
    return bytes(writer.buffer)


def encode_engine_into(image: EngineImage, buf: memoryview) -> int:
    """Serialize a whole-engine image into *buf*; returns bytes written.

    The zero-copy sibling of :func:`encode_engine` — the blob lands
    directly in a caller-provided buffer (e.g. a shared-memory ring
    reservation).  Raises :class:`StateCodecError` if *buf* is too
    small; nothing past the returned length is touched.
    """
    writer = _ViewWriter(buf)
    _encode_engine_with(writer, image)
    return writer.offset


def decode_engine(
    data: "bytes | bytearray | memoryview",
    params: Optional[IPDParams] = None,
) -> EngineImage:
    """Parse an engine blob back into an :class:`EngineImage`.

    *data* may be any byte buffer, including a memoryview slice of
    shared memory (nothing in the returned image aliases it).  *params*
    overrides the encoded parameters — required when the blob was
    written with a custom (non-serializable) decay function.

    Trailing bytes past the engine section are ignored; callers that
    need to parse what follows (e.g. an appended admission section) use
    :func:`decode_engine_span`.
    """
    image, __ = decode_engine_span(data, params=params)
    return image


def decode_engine_span(
    data: "bytes | bytearray | memoryview",
    params: Optional[IPDParams] = None,
) -> "tuple[EngineImage, int]":
    """Like :func:`decode_engine`, but also return the bytes consumed.

    The second element is the offset one past the engine section, so a
    caller can locate trailing sections appended after the engine blob.
    """
    reader = _Reader(data)
    with _damage_reported(reader):
        _read_header(reader, _KIND_ENGINE)
        decoded_params = _read_params(reader, params)
        flows_ingested = reader.uvarint()
        bytes_ingested = reader.uvarint()
        last_sweep_at = reader.float() if reader.byte() else None
        cidrmax_failures = {}
        for __ in range(reader.uvarint()):
            prefix = reader.prefix()
            cidrmax_failures[prefix] = reader.uvarint()
        trees = {}
        for __ in range(reader.uvarint()):
            version = reader.byte()
            root_prefix = reader.prefix()
            split_count = reader.uvarint()
            join_count = reader.uvarint()
            trees[version] = TreeImage(
                version=version,
                root_prefix=root_prefix,
                split_count=split_count,
                join_count=join_count,
                root=_read_node(reader),
            )
        image = EngineImage(
            params=decoded_params,
            flows_ingested=flows_ingested,
            bytes_ingested=bytes_ingested,
            last_sweep_at=last_sweep_at,
            cidrmax_failures=cidrmax_failures,
            trees=trees,
        )
        return image, reader.offset


# ---------------------------------------------------------------------------
# subtree blobs (shard handoff / export)
# ---------------------------------------------------------------------------


def _encode_subtree_with(
    writer: _Writer,
    prefix: Prefix,
    version: int,
    root: NodeImage,
    split_count: int,
    join_count: int,
) -> None:
    _write_header(writer, _KIND_SUBTREE)
    writer.byte(version)
    writer.prefix(prefix)
    writer.uvarint(split_count)
    writer.uvarint(join_count)
    _write_node(writer, root)


def encode_subtree(
    prefix: Prefix,
    version: int,
    root: NodeImage,
    split_count: int = 0,
    join_count: int = 0,
) -> bytes:
    """Serialize one detached subtree (a seed payload or shard export)."""
    writer = _Writer()
    _encode_subtree_with(writer, prefix, version, root, split_count, join_count)
    return bytes(writer.buffer)


def encode_subtree_into(
    prefix: Prefix,
    version: int,
    root: NodeImage,
    buf: memoryview,
    split_count: int = 0,
    join_count: int = 0,
) -> int:
    """Serialize one subtree into *buf*; returns the bytes written."""
    writer = _ViewWriter(buf)
    _encode_subtree_with(writer, prefix, version, root, split_count, join_count)
    return writer.offset


def decode_subtree(data: "bytes | bytearray | memoryview") -> SubtreeImage:
    """Parse a subtree blob back into a :class:`SubtreeImage`."""
    reader = _Reader(data)
    with _damage_reported(reader):
        _read_header(reader, _KIND_SUBTREE)
        version = reader.byte()
        prefix = reader.prefix()
        split_count = reader.uvarint()
        join_count = reader.uvarint()
        return SubtreeImage(
            prefix=prefix,
            version=version,
            split_count=split_count,
            join_count=join_count,
            root=_read_node(reader),
        )


@contextmanager
def _damage_reported(reader: "_Reader") -> Iterator[None]:
    """Normalize decoder failures into offset-carrying codec errors.

    Structural damage surfaces in many shapes — truncation (already a
    :class:`StateCodecError`), a corrupted varint blowing up a ``range``,
    invalid UTF-8 in an interned ingress name, out-of-range prefix
    fields rejected by :class:`~repro.core.iputil.Prefix`, parameter
    values rejected by ``IPDParams.__post_init__``.  All of them exit
    here as a :class:`StateCodecError` whose ``offset`` pins where in
    the blob the decoder gave up; only version incompatibility keeps its
    dedicated type.
    """
    try:
        yield
    except IncompatibleStateError:
        raise
    except StateCodecError as exc:
        if exc.offset is None:
            exc.offset = reader.offset
        raise
    except (ValueError, KeyError, IndexError, OverflowError, struct.error) as exc:
        raise StateCodecError(
            f"damaged blob at offset {reader.offset}: {exc!r}",
            offset=reader.offset,
        ) from exc
