"""The IPD algorithm (Algorithm 1 of the paper).

Two stages, mirrored here as two methods:

* :meth:`IPD.ingest` — Stage 1.  Masks a flow's source address to
  ``cidr_max`` and adds (timestamp, masked source, ingress link) to the
  covering range of the per-family binary trie.
* :meth:`IPD.sweep` — Stage 2.  Every ``t`` seconds, walks all ranges:
  expires stale observations, classifies ranges with a prevalent ingress
  (``s_ingress >= q`` once ``s_ipcount >= n_cidr``), splits ranges with
  competing ingresses (until ``cidr_max``), joins sibling ranges that
  agree, decays idle classified ranges, and drops invalidated ones.

The deployment runs the stages in two threads; behaviourally the
algorithm is defined by "all ingest before each sweep tick", which the
event-driven :mod:`repro.core.driver` reproduces deterministically.  A
thread-backed runner with the deployment layout lives in the same
driver module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..netflow.records import FlowRecord
from ..topology.elements import IngressPoint
from .bundles import dominant_ingress
from .iputil import IPV4, IPV6, Prefix, mask_ip
from .output import IPDRecord
from .params import DEFAULT_PARAMS, IPDParams
from .rangetree import RangeNode, RangeTree
from .state import ClassifiedState, UnclassifiedState

__all__ = ["IPD", "SweepReport"]


@dataclass
class SweepReport:
    """Bookkeeping emitted by one Stage-2 sweep."""

    timestamp: float
    duration_seconds: float = 0.0
    leaves: int = 0
    classified: int = 0
    classifications: int = 0
    splits: int = 0
    joins: int = 0
    drops: int = 0
    prunes: int = 0
    expired_sources: int = 0
    decayed_ranges: int = 0
    #: per-family leaf counts after the sweep
    leaves_by_version: dict[int, int] = field(default_factory=dict)


class IPD:
    """Online ingress point detection over a flow stream.

    An optional :class:`~repro.core.lbdetect.LoadBalanceDetector` can be
    attached (the §5.8 future-work extension): ranges that keep failing
    classification at ``cidr_max`` are handed to it for (src, dst) pair
    tracking, and matching flows are mirrored into it during ingest.
    """

    def __init__(
        self,
        params: IPDParams | None = None,
        lb_detector: "object | None" = None,
        lb_patience: int = 3,
    ) -> None:
        self.params = params or DEFAULT_PARAMS
        self.trees: dict[int, RangeTree] = {
            IPV4: RangeTree(IPV4),
            IPV6: RangeTree(IPV6),
        }
        self.flows_ingested = 0
        self.bytes_ingested = 0
        self.last_sweep_at: float | None = None
        self.lb_detector = lb_detector
        self.lb_patience = lb_patience
        self._cidrmax_failures: dict[Prefix, int] = {}

    # ------------------------------------------------------------------ stage 1

    def ingest(self, flow: FlowRecord) -> None:
        """Add one flow observation (Algorithm 1, lines 1-4)."""
        params = self.params
        tree = self.trees[flow.version]
        masked = mask_ip(flow.src_ip, params.cidr_max(flow.version), flow.version)
        leaf = tree.lookup_leaf(masked)
        weight = float(flow.bytes) if params.count_bytes else 1.0
        state = leaf.state
        if isinstance(state, UnclassifiedState):
            state.add(masked, flow.ingress, flow.timestamp, weight)
        else:
            assert isinstance(state, ClassifiedState)
            state.add(flow.ingress, flow.timestamp, weight)
        self.flows_ingested += 1
        self.bytes_ingested += flow.bytes
        if self.lb_detector is not None:
            self.lb_detector.observe(flow)

    def ingest_many(self, flows) -> int:
        """Ingest an iterable of flows; returns how many were consumed."""
        count = 0
        for flow in flows:
            self.ingest(flow)
            count += 1
        return count

    # ------------------------------------------------------------------ stage 2

    def sweep(self, now: float) -> SweepReport:
        """Run one Stage-2 pass over all ranges (Algorithm 1, lines 5-19)."""
        started = time.perf_counter()
        report = SweepReport(timestamp=now)
        for tree in self.trees.values():
            self._sweep_tree(tree, now, report)
            report.leaves_by_version[tree.version] = tree.leaf_count()
        report.leaves = sum(report.leaves_by_version.values())
        report.classified = sum(
            1 for tree in self.trees.values() for __ in tree.classified_leaves()
        )
        report.duration_seconds = time.perf_counter() - started
        self.last_sweep_at = now
        return report

    def _sweep_tree(self, tree: RangeTree, now: float, report: SweepReport) -> None:
        params = self.params
        version = tree.version
        cidr_max = params.cidr_max(version)
        expiry_cutoff = now - params.e

        for leaf in list(tree.leaves()):
            state = leaf.state
            if isinstance(state, UnclassifiedState):
                report.expired_sources += state.expire(expiry_cutoff)
                self._handle_unclassified(tree, leaf, state, now, cidr_max, report)
            else:
                assert isinstance(state, ClassifiedState)
                self._handle_classified(leaf, state, now, report)

        report.joins += self._join_pass(tree, now)
        report.prunes += tree.prune(_is_empty_unclassified)
        tree.clear_cache()

    def _handle_unclassified(
        self,
        tree: RangeTree,
        leaf: RangeNode,
        state: UnclassifiedState,
        now: float,
        cidr_max: int,
        report: SweepReport,
    ) -> None:
        params = self.params
        masklen = leaf.prefix.masklen
        if state.sample_count < params.n_cidr(masklen, tree.version):
            return  # line 8: not enough samples yet
        found = dominant_ingress(
            state.ingress_totals(),
            enable_bundles=params.enable_bundles,
            min_share=params.bundle_min_share,
        )
        if found is None:
            return
        ingress, share, __ = found
        if share >= params.q:
            # line 10: assign the prevalent ingress; per-IP detail is
            # discarded ("all state is removed for efficiency reasons").
            leaf.state = ClassifiedState(
                ingress=ingress,
                counters=state.ingress_totals(),
                last_seen=state.newest_timestamp,
                classified_at=now,
            )
            report.classifications += 1
            self._cidrmax_failures.pop(leaf.prefix, None)
        elif masklen < cidr_max:
            tree.split(leaf)  # line 13
            report.splits += 1
        else:
            # cidr_max reached without dominance (line 15); the join
            # pass below may still coarsen once siblings agree.  With a
            # load-balance detector attached, persistent failure here
            # is the trigger for (src, dst) pair tracking (§5.8).
            if self.lb_detector is not None:
                failures = self._cidrmax_failures.get(leaf.prefix, 0) + 1
                self._cidrmax_failures[leaf.prefix] = failures
                if failures >= self.lb_patience:
                    self.lb_detector.watch(leaf.prefix)

    def _handle_classified(
        self,
        leaf: RangeNode,
        state: ClassifiedState,
        now: float,
        report: SweepReport,
    ) -> None:
        params = self.params
        age = now - state.last_seen
        if age > params.t:
            # No fresh traffic in the last bucket: decay toward removal.
            # Table 1's ``decay`` is the fraction REMOVED per sweep, so
            # the keep-factor is ``1 - decay = 0.9/(age/t + 1)``, which
            # shrinks as the range ages — repeated application collapses
            # even billion-sample counters within ~10 idle sweeps.
            # "This ensures that ranges are quickly removed from
            # classification when no new traffic is received" (§3.2).
            keep = max(0.0, 1.0 - params.decay(age, params.t))
            state.decay(keep)
            report.decayed_ranges += 1
            if state.total < params.drop_threshold:
                leaf.state = UnclassifiedState()  # line 19: drop
                report.drops += 1
                return
        share = state.confidence_for(_members_of(state.ingress))
        if share < params.q:
            leaf.state = UnclassifiedState()  # line 19: drop
            report.drops += 1

    def _join_pass(self, tree: RangeTree, now: float) -> int:
        """Merge sibling leaves classified to the same logical ingress.

        "Adjacent ranges may also be joined if they share the same
        ingress and meet sample count requirements" (§3.2).  The merged
        parent must itself satisfy its (larger) ``n_cidr`` threshold.
        """
        params = self.params
        joins = 0
        for parent in list(tree.internal_nodes_postorder()):
            left, right = parent.left, parent.right
            assert left is not None and right is not None
            if not (left.is_leaf and right.is_leaf):
                continue
            left_state, right_state = left.state, right.state
            if not (
                isinstance(left_state, ClassifiedState)
                and isinstance(right_state, ClassifiedState)
            ):
                continue
            if left_state.ingress != right_state.ingress:
                continue
            combined_total = left_state.total + right_state.total
            threshold = params.n_cidr(parent.prefix.masklen, tree.version)
            if combined_total < threshold:
                continue
            counters = dict(left_state.counters)
            for ingress, weight in right_state.counters.items():
                counters[ingress] = counters.get(ingress, 0.0) + weight
            merged = ClassifiedState(
                ingress=left_state.ingress,
                counters=counters,
                last_seen=max(left_state.last_seen, right_state.last_seen),
                classified_at=min(
                    left_state.classified_at, right_state.classified_at
                ),
            )
            tree.join(parent, merged)
            joins += 1
        return joins

    # ------------------------------------------------------------------ output

    def snapshot(
        self, now: float, include_unclassified: bool = False
    ) -> list[IPDRecord]:
        """Emit the current mapping in the Table-3 raw output format."""
        params = self.params
        records: list[IPDRecord] = []
        for tree in self.trees.values():
            for leaf in tree.leaves():
                state = leaf.state
                n_cidr = params.n_cidr(leaf.prefix.masklen, tree.version)
                if isinstance(state, ClassifiedState):
                    candidates = tuple(
                        sorted(state.counters.items(), key=lambda item: -item[1])
                    )
                    total = state.total
                    share = state.confidence_for(_members_of(state.ingress))
                    records.append(
                        IPDRecord(
                            timestamp=now,
                            range=leaf.prefix,
                            ingress=state.ingress,
                            s_ingress=share,
                            s_ipcount=total,
                            n_cidr=n_cidr,
                            candidates=candidates,
                            classified=True,
                        )
                    )
                elif include_unclassified and not state.is_empty():
                    totals = state.ingress_totals()
                    found = dominant_ingress(
                        totals,
                        enable_bundles=params.enable_bundles,
                        min_share=params.bundle_min_share,
                    )
                    if found is None:
                        continue
                    ingress, share, __ = found
                    records.append(
                        IPDRecord(
                            timestamp=now,
                            range=leaf.prefix,
                            ingress=ingress,
                            s_ingress=share,
                            s_ipcount=state.sample_count,
                            n_cidr=n_cidr,
                            candidates=tuple(
                                sorted(totals.items(), key=lambda item: -item[1])
                            ),
                            classified=False,
                        )
                    )
        records.sort(key=lambda record: (record.version, record.range.value))
        return records

    # ------------------------------------------------------------------ metrics

    def state_size(self) -> int:
        """Total number of tracked (masked IP, ingress) entries + counters.

        A proxy for the RAM footprint used by the parameter study's
        resource-consumption metric.
        """
        size = 0
        for tree in self.trees.values():
            for leaf in tree.leaves():
                state = leaf.state
                if isinstance(state, UnclassifiedState):
                    size += sum(len(by_ingress) for by_ingress in state.per_ip.values())
                else:
                    assert isinstance(state, ClassifiedState)
                    size += len(state.counters)
        return size

    def leaf_count(self) -> int:
        return sum(tree.leaf_count() for tree in self.trees.values())


def _members_of(ingress: IngressPoint) -> tuple[IngressPoint, ...]:
    """Expand a (possibly bundled) logical ingress into raw interfaces."""
    return tuple(
        IngressPoint(ingress.router, name) for name in ingress.interfaces()
    )


def _is_empty_unclassified(node: RangeNode) -> bool:
    return isinstance(node.state, UnclassifiedState) and node.state.is_empty()
