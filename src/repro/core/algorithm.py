"""The IPD algorithm (Algorithm 1 of the paper).

Two stages, mirrored here as two methods:

* :meth:`IPD.ingest` / :meth:`IPD.ingest_batch` — Stage 1.  Masks a
  flow's source address to ``cidr_max`` and adds (timestamp, masked
  source, ingress link) to the covering range of the per-family binary
  trie.  The batch entry point amortizes the per-flow costs: one pass
  masks the whole batch, flows are grouped by masked source, and each
  distinct source resolves its leaf once.
* :meth:`IPD.sweep` — Stage 2.  Every ``t`` seconds: expires stale
  observations, classifies ranges with a prevalent ingress
  (``s_ingress >= q`` once ``s_ipcount >= n_cidr``), splits ranges with
  competing ingresses (until ``cidr_max``), joins sibling ranges that
  agree, decays idle classified ranges, and drops invalidated ones.

Sweeps are *dirty-range* sweeps: instead of walking every leaf, the
sweep visits (a) leaves touched by ingest since the last sweep, (b)
leaves whose expiry bound fell due (from the trie's expiry heap), and
(c) all classified leaves (their decay depends on ``now``).  Idle
unclassified leaves are skipped — safe because the Stage-2 decision for
a leaf is a pure function of its state, so an unchanged leaf repeats
last sweep's no-op.  The one exception is the §5.8 load-balance
extension, whose per-sweep failure counting observes *every* sweep a
leaf stays unclassified at ``cidr_max``; with a detector attached the
sweep falls back to the full walk.

The deployment runs the stages in two threads; behaviourally the
algorithm is defined by "all ingest before each sweep tick", which the
event-driven :mod:`repro.core.driver` reproduces deterministically.  A
thread-backed runner with the deployment layout lives in the same
driver module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from ..devtools.markers import hot_path
from ..netflow.records import FlowBatch, FlowRecord
from ..topology.elements import IngressPoint
from .admission import (
    AdmissionConfig,
    AdmissionController,
    decode_admission,
    encode_admission,
)
from .bundles import dominant_ingress
from .iputil import IPV4, IPV6, Prefix, mask_ip
from .lbdetect import LBDetectorLike
from .output import IPDRecord
from .params import DEFAULT_PARAMS, IPDParams
from .rangetree import RangeNode, RangeTree
from .state import ClassifiedState, DelegatedState, UnclassifiedState
from .statecodec import (
    EngineImage,
    StateCodecError,
    decode_engine_span,
    encode_engine,
    engine_to_image,
    restore_tree,
)

__all__ = ["IPD", "SweepReport"]

#: flows accumulated per internal batch by :meth:`IPD.ingest_many`;
#: large enough that grouping amortizes leaf resolution even when the
#: stream cycles through tens of thousands of distinct sources
_INGEST_CHUNK = 65536


@dataclass
class SweepReport:
    """Bookkeeping emitted by one Stage-2 sweep."""

    timestamp: float
    duration_seconds: float = 0.0
    leaves: int = 0
    classified: int = 0
    classifications: int = 0
    splits: int = 0
    joins: int = 0
    drops: int = 0
    prunes: int = 0
    expired_sources: int = 0
    decayed_ranges: int = 0
    #: leaves actually visited by this sweep (dirty + expiry-due +
    #: classified); the gap to ``leaves`` is the idle set skipped
    visited: int = 0
    #: lookup-cache totals across families (cumulative since start)
    cache_size: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    #: admission front-end decisions since the previous sweep (all zero
    #: when no admission controller is attached)
    admission_admitted: int = 0
    admission_held: int = 0
    admission_dropped: int = 0
    admission_promoted: int = 0
    admission_saturated: bool = False
    #: per-family leaf counts after the sweep
    leaves_by_version: dict[int, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        probes = self.cache_hits + self.cache_misses
        return self.cache_hits / probes if probes else 0.0


class IPD:
    """Online ingress point detection over a flow stream.

    An optional :class:`~repro.core.lbdetect.LoadBalanceDetector` can be
    attached (the §5.8 future-work extension): ranges that keep failing
    classification at ``cidr_max`` are handed to it for (src, dst) pair
    tracking, and matching flows are mirrored into it during ingest.
    """

    def __init__(
        self,
        params: IPDParams | None = None,
        lb_detector: LBDetectorLike | None = None,
        lb_patience: int = 3,
        roots: "dict[int, Prefix] | None" = None,
        admission: "AdmissionController | AdmissionConfig | None" = None,
    ) -> None:
        self.params = params or DEFAULT_PARAMS
        #: optional sketch-gated admission front-end; ``None`` means the
        #: classic direct-to-trie ingest path (admission off)
        self.admission: AdmissionController | None = _coerce_admission(admission)
        #: per-family root prefixes; defaults to /0 (the whole space).
        #: The sharded runtime roots one engine per depth-k subtree.
        self.trees: dict[int, RangeTree] = {
            version: RangeTree(
                version,
                root_prefix=roots.get(version) if roots is not None else None,
            )
            for version in (IPV4, IPV6)
        }
        self.flows_ingested = 0
        self.bytes_ingested = 0
        self.last_sweep_at: float | None = None
        self.lb_detector: LBDetectorLike | None = lb_detector
        self.lb_patience = lb_patience
        self._cidrmax_failures: dict[Prefix, int] = {}

    # ------------------------------------------------------------------ state io

    def to_image(self) -> EngineImage:
        """Snapshot the full engine state as a codec-neutral image."""
        return engine_to_image(self)

    def to_bytes(self) -> bytes:
        """Serialize the full engine state to one versioned blob.

        The blob captures everything a future :meth:`from_bytes` needs
        to continue *exactly* where this engine stands: trie topology,
        per-range payloads, params, counters, and the dirty/expiry
        bookkeeping — the restored engine's next sweep visits the same
        leaves and produces the same report this engine's would have.

        With an admission front-end attached, its state (sketch cells,
        elephant set, held groups) is appended as a self-delimiting
        trailing section; admission-off blobs are byte-identical to
        what this method always produced.
        """
        blob = encode_engine(self.to_image())
        if self.admission is not None:
            blob += encode_admission(self.admission.to_image())
        return blob

    @classmethod
    def from_image(
        cls,
        image: EngineImage,
        lb_detector: LBDetectorLike | None = None,
        lb_patience: int = 3,
        admission: "AdmissionController | AdmissionConfig | None" = None,
    ) -> "IPD":
        """Rebuild an engine from an image produced by :meth:`to_image`."""
        roots = {
            version: tree.root_prefix for version, tree in image.trees.items()
        }
        engine = cls(
            params=image.params,
            lb_detector=lb_detector,
            lb_patience=lb_patience,
            roots=roots,
            admission=admission,
        )
        for version, tree_image in image.trees.items():
            tree = engine.trees.get(version)
            if tree is None:
                raise StateCodecError(
                    f"image contains unsupported address family {version}"
                )
            restore_tree(tree, tree_image)
        engine.flows_ingested = image.flows_ingested
        engine.bytes_ingested = image.bytes_ingested
        engine.last_sweep_at = image.last_sweep_at
        engine._cidrmax_failures = dict(image.cidrmax_failures)
        return engine

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        params: IPDParams | None = None,
        lb_detector: LBDetectorLike | None = None,
        lb_patience: int = 3,
        admission: "AdmissionController | AdmissionConfig | None" = None,
    ) -> "IPD":
        """Rebuild an engine from a :meth:`to_bytes` blob.

        *params* must be supplied when the blob was written with a
        custom decay function (callables do not serialize).  When the
        blob carries a trailing admission section, the controller is
        restored from it and *admission* is ignored; otherwise
        *admission* (a config or fresh controller) attaches one.
        """
        image, consumed = decode_engine_span(data, params=params)
        if consumed < len(data):
            admission = AdmissionController.from_image(
                decode_admission(memoryview(data)[consumed:])
            )
        return cls.from_image(
            image,
            lb_detector=lb_detector,
            lb_patience=lb_patience,
            admission=admission,
        )

    # ------------------------------------------------------------------ stage 1

    @hot_path
    def ingest(self, flow: FlowRecord) -> None:
        """Add one flow observation (Algorithm 1, lines 1-4)."""
        params = self.params
        tree = self.trees[flow.version]
        masked = mask_ip(flow.src_ip, params.cidr_max(flow.version), flow.version)
        weight = float(flow.bytes) if params.count_bytes else 1.0
        if self.admission is not None:
            # route through the staged admit path as a one-group batch
            self._apply_groups(
                tree, {masked: [{flow.ingress: weight}, flow.timestamp, flow.timestamp]}
            )
            self.flows_ingested += 1
            self.bytes_ingested += flow.bytes
            if self.lb_detector is not None:
                self.lb_detector.observe(flow)
            return
        leaf = tree.lookup_leaf(masked)
        state = leaf._state
        if isinstance(state, UnclassifiedState):
            state.add(masked, flow.ingress, flow.timestamp, weight)
            tree.dirty.add(leaf)
            if state.heap_bound != state.oldest_seen:
                tree.schedule_expiry(leaf)
        else:
            assert isinstance(state, ClassifiedState)
            state.add(flow.ingress, flow.timestamp, weight)
        self.flows_ingested += 1
        self.bytes_ingested += flow.bytes
        if self.lb_detector is not None:
            self.lb_detector.observe(flow)

    @hot_path
    def ingest_batch(self, batch: FlowBatch) -> int:
        """Add a columnar batch of flows; returns how many were consumed.

        Equivalent to ingesting the batch's flows one by one (weights are
        integer-valued, so the regrouped float sums are exact), but the
        per-flow costs are amortized: a single pass masks every source
        and accumulates per-(masked source, ingress) weights, then each
        *distinct* masked source resolves its leaf once and folds its
        whole group in one state update.
        """
        count = len(batch.timestamps)
        if count == 0:
            return 0
        params = self.params
        tree = self.trees[batch.version]
        shift = tree.root.prefix.bits - params.cidr_max(batch.version)
        count_bytes = params.count_bytes

        # pass 0 (lossy admission only): the vectorized pre-gate drops
        # never-promoted mice on the raw columns, before any per-flow
        # Python work; accounting below still covers the full batch
        original = batch
        admission = self.admission
        if admission is not None:
            kept_rows = admission.prefilter_rows(
                batch.version,
                shift,
                batch.src_ips,
                batch.byte_counts if count_bytes else None,
            )
            if kept_rows is not None:
                batch = batch.select(kept_rows)

        # pass 1: mask + group.  groups: masked -> [by_ingress, newest, oldest]
        groups: dict[int, list] = {}
        get_group = groups.get
        for src, ingress, ts, nbytes in zip(
            batch.src_ips, batch.ingresses, batch.timestamps, batch.byte_counts
        ):
            masked = (src >> shift) << shift
            weight = float(nbytes) if count_bytes else 1.0
            group = get_group(masked)
            if group is None:
                groups[masked] = [{ingress: weight}, ts, ts]
            else:
                by_ingress = group[0]
                previous = by_ingress.get(ingress)
                by_ingress[ingress] = (
                    weight if previous is None else previous + weight
                )
                if ts > group[1]:
                    group[1] = ts
                elif ts < group[2]:
                    group[2] = ts

        # pass 2: one leaf resolution + one state fold per distinct source
        if groups:
            self._apply_groups(tree, groups)

        self.flows_ingested += count
        self.bytes_ingested += sum(original.byte_counts)
        if self.lb_detector is not None:
            observe = self.lb_detector.observe
            for flow in original.iter_flows():
                observe(flow)
        return count

    def _apply_groups(self, tree: RangeTree, groups: dict[int, list]) -> None:
        """Fold accumulated per-source groups into their covering leaves.

        This is the admission seam: with a controller attached the
        groups first pass its admit → promote → count gate and only the
        admitted subset reaches the trie; without one this is a direct
        alias for the classic fold.
        """
        admission = self.admission
        if admission is None:
            self._apply_groups_direct(tree, groups)
            return
        admitted = admission.filter_groups(tree.version, groups)
        if admitted:
            self._apply_admitted(tree, admitted, admission)

    @hot_path
    def _apply_groups_direct(self, tree: RangeTree, groups: dict[int, list]) -> None:
        """The classic per-source fold, bypassing admission entirely."""
        lookup = tree.lookup_leaf
        dirty_add = tree.dirty.add
        for masked, (by_ingress, newest, oldest) in groups.items():
            leaf = lookup(masked)
            state = leaf._state
            if isinstance(state, UnclassifiedState):
                state.add_batch(masked, by_ingress, newest, oldest)
                dirty_add(leaf)
                if state.heap_bound != state.oldest_seen:
                    tree.schedule_expiry(leaf)
            else:
                assert isinstance(state, ClassifiedState)
                state.add_batch(by_ingress, newest)

    @hot_path
    def _apply_admitted(
        self,
        tree: RangeTree,
        groups: dict[int, list],
        admission: AdmissionController,
    ) -> None:
        """Fold admitted groups, with the known-elephant leaf fast path.

        Elephants keep a cached handle to their covering leaf, so the
        steady-state hot loop skips the trie lookup (and its LRU cache)
        entirely.  A handle is revalidated the same way the lookup cache
        is: a split or join kills the node, falling back to one lookup.
        """
        version = tree.version
        handles = admission.handles(version)
        herd = admission.elephants(version)
        lookup = tree.lookup_leaf
        dirty_add = tree.dirty.add
        handles_get = handles.get
        herd_contains = herd.__contains__
        for masked, (by_ingress, newest, oldest) in groups.items():
            leaf = handles_get(masked)
            if leaf is None or leaf.dead or leaf.left is not None:
                leaf = lookup(masked)
                if herd_contains(masked):
                    handles[masked] = leaf
            state = leaf._state
            if isinstance(state, UnclassifiedState):
                state.add_batch(masked, by_ingress, newest, oldest)
                dirty_add(leaf)
                if state.heap_bound != state.oldest_seen:
                    tree.schedule_expiry(leaf)
            else:
                assert isinstance(state, ClassifiedState)
                state.add_batch(by_ingress, newest)

    @hot_path
    def ingest_many(self, flows: Iterable[FlowRecord]) -> int:
        """Ingest an iterable of flows; returns how many were consumed.

        Flows are chunked into columnar :class:`FlowBatch` runs per
        address family and fed through :meth:`ingest_batch`, so bulk
        callers get the amortized hot path without building batches
        themselves.
        """
        if isinstance(flows, FlowBatch):
            return self.ingest_batch(flows)
        params = self.params
        trees = self.trees
        count_bytes = params.count_bytes
        lb_detector = self.lb_detector
        shifts = {
            version: tree.root.prefix.bits - params.cidr_max(version)
            for version, tree in trees.items()
        }
        groups_by_version: dict[int, dict[int, list]] = {
            version: {} for version in trees
        }
        count = 0
        pending = 0
        total_bytes = 0
        for flow in flows:
            version = flow.version
            shift = shifts[version]
            masked = (flow.src_ip >> shift) << shift
            timestamp = flow.timestamp
            weight = float(flow.bytes) if count_bytes else 1.0
            groups = groups_by_version[version]
            group = groups.get(masked)
            if group is None:
                groups[masked] = [{flow.ingress: weight}, timestamp, timestamp]
            else:
                by_ingress = group[0]
                ingress = flow.ingress
                previous = by_ingress.get(ingress)
                by_ingress[ingress] = (
                    weight if previous is None else previous + weight
                )
                if timestamp > group[1]:
                    group[1] = timestamp
                elif timestamp < group[2]:
                    group[2] = timestamp
            total_bytes += flow.bytes
            count += 1
            pending += 1
            if lb_detector is not None:
                lb_detector.observe(flow)
            if pending >= _INGEST_CHUNK:
                for version, groups in groups_by_version.items():
                    if groups:
                        self._apply_groups(trees[version], groups)
                # amortized: rebuilt once per _INGEST_CHUNK flows, and the
                # consumed group dicts must not be reused across chunks
                groups_by_version = {version: {} for version in trees}  # ipd-lint: disable=IPD005
                pending = 0
        for version, groups in groups_by_version.items():
            if groups:
                self._apply_groups(trees[version], groups)
        self.flows_ingested += count
        self.bytes_ingested += total_bytes
        return count

    # ------------------------------------------------------------------ stage 2

    def flush_held(self) -> None:
        """Replay all held-back groups into the trie (exact mode).

        Called before every sweep and snapshot so that whenever state
        becomes observable, the trie has seen exactly the samples an
        admission-off engine would have — the byte-identity contract of
        ``exact`` mode.  Replayed groups bypass the admission gate (they
        were already decided) but mark dirty/expiry exactly as a direct
        ingest would have.
        """
        admission = self.admission
        if admission is None or not admission.has_held():
            return
        for tree in self.trees.values():
            held = admission.drain_held(tree.version)
            if held:
                self._apply_groups_direct(tree, held)

    def saturate_admission(self) -> None:
        """Force the admission sketch to its ceiling (fault injection).

        A saturated controller degrades to admit-everything; without a
        controller this is a no-op, so fault plans can target any
        engine.
        """
        if self.admission is not None:
            self.admission.saturate()

    @hot_path
    def sweep(self, now: float) -> SweepReport:
        """Run one Stage-2 pass over the active ranges (Algorithm 1, lines 5-19)."""
        started = time.perf_counter()
        admission = self.admission
        if admission is not None:
            admission.age_to(now)
            self.flush_held()
        report = SweepReport(timestamp=now)
        if admission is not None:
            (
                report.admission_admitted,
                report.admission_held,
                report.admission_dropped,
                report.admission_promoted,
            ) = admission.take_counters()
            report.admission_saturated = admission.saturated
        for tree in self.trees.values():
            self._sweep_tree(tree, now, report)
            report.leaves_by_version[tree.version] = tree.leaf_count()
            report.cache_size += tree.cache_size()
            report.cache_hits += tree.cache_hits
            report.cache_misses += tree.cache_misses
            report.cache_evictions += tree.cache_evictions
        report.leaves = sum(report.leaves_by_version.values())
        report.classified = sum(
            tree.classified_count() for tree in self.trees.values()
        )
        report.duration_seconds = time.perf_counter() - started
        self.last_sweep_at = now
        return report

    @hot_path
    def _sweep_tree(self, tree: RangeTree, now: float, report: SweepReport) -> None:
        params = self.params
        version = tree.version
        cidr_max = params.cidr_max(version)
        expiry_cutoff = now - params.e

        if self.lb_detector is not None:
            # The detector's failure counter ticks every sweep a leaf
            # sits unclassified at cidr_max — only a full walk sees that.
            tree.drain_dirty()
            tree.pop_expiry_due(expiry_cutoff)
            to_visit = list(tree.leaves())
        else:
            candidates = tree.drain_dirty()
            candidates.update(tree.pop_expiry_due(expiry_cutoff))
            candidates.update(tree._classified)
            to_visit = sorted(candidates, key=lambda node: node.prefix.value)

        prune_candidates: list[RangeNode] = []
        for leaf in to_visit:
            if leaf.dead or leaf.left is not None:
                continue  # went away since it was marked (join/split)
            state = leaf._state
            if isinstance(state, DelegatedState):
                continue  # owned by another engine; inert here
            report.visited += 1
            if isinstance(state, UnclassifiedState):
                if state.oldest_seen < expiry_cutoff:
                    report.expired_sources += state.expire(expiry_cutoff)
                if state.per_ip:
                    self._handle_unclassified(
                        tree, leaf, state, now, cidr_max, report
                    )
                    # still the same unclassified leaf? re-arm its expiry
                    if (
                        leaf._state is state
                        and leaf.left is None
                        and state.heap_bound != state.oldest_seen
                    ):
                        tree.schedule_expiry(leaf)
                else:
                    prune_candidates.append(leaf)
            else:
                assert isinstance(state, ClassifiedState)
                self._handle_classified(leaf, state, now, report)
                if isinstance(leaf._state, UnclassifiedState):
                    prune_candidates.append(leaf)  # just dropped to empty

        report.joins += self._join_pass(tree, now)
        report.prunes += tree.prune_upward(
            prune_candidates, _is_empty_unclassified, on_remove=self._forget_prefix
        )

    def _forget_prefix(self, node: RangeNode) -> None:
        """Drop per-prefix side state when a leaf leaves the trie."""
        self._cidrmax_failures.pop(node.prefix, None)

    def _handle_unclassified(
        self,
        tree: RangeTree,
        leaf: RangeNode,
        state: UnclassifiedState,
        now: float,
        cidr_max: int,
        report: SweepReport,
    ) -> None:
        params = self.params
        masklen = leaf.prefix.masklen
        if state.sample_count < params.n_cidr(masklen, tree.version):
            return  # line 8: not enough samples yet
        found = dominant_ingress(
            state.ingress_totals(),
            enable_bundles=params.enable_bundles,
            min_share=params.bundle_min_share,
        )
        if found is None:
            return
        ingress, share, __ = found
        if share >= params.q:
            # line 10: assign the prevalent ingress; per-IP detail is
            # discarded ("all state is removed for efficiency reasons").
            leaf.state = ClassifiedState(
                ingress=ingress,
                counters=state.ingress_totals(),
                last_seen=state.newest_timestamp,
                classified_at=now,
            )
            report.classifications += 1
            self._cidrmax_failures.pop(leaf.prefix, None)
        elif masklen < cidr_max:
            tree.split(leaf)  # line 13
            report.splits += 1
        else:
            # cidr_max reached without dominance (line 15); the join
            # pass below may still coarsen once siblings agree.  With a
            # load-balance detector attached, persistent failure here
            # is the trigger for (src, dst) pair tracking (§5.8).
            if self.lb_detector is not None:
                failures = self._cidrmax_failures.get(leaf.prefix, 0) + 1
                self._cidrmax_failures[leaf.prefix] = failures
                if failures >= self.lb_patience:
                    self.lb_detector.watch(leaf.prefix)

    def _handle_classified(
        self,
        leaf: RangeNode,
        state: ClassifiedState,
        now: float,
        report: SweepReport,
    ) -> None:
        params = self.params
        age = now - state.last_seen
        if age > params.t:
            # No fresh traffic in the last bucket: decay toward removal.
            # Table 1's ``decay`` is the fraction REMOVED per sweep, so
            # the keep-factor is ``1 - decay = 0.9/(age/t + 1)``, which
            # shrinks as the range ages — repeated application collapses
            # even billion-sample counters within ~10 idle sweeps.
            # "This ensures that ranges are quickly removed from
            # classification when no new traffic is received" (§3.2).
            keep = max(0.0, 1.0 - params.decay(age, params.t))
            state.decay(keep)
            report.decayed_ranges += 1
            if state.total < params.drop_threshold:
                leaf.state = UnclassifiedState()  # line 19: drop
                report.drops += 1
                self._cidrmax_failures.pop(leaf.prefix, None)
                return
        share = state.confidence_for(_members_of(state.ingress))
        if share < params.q:
            leaf.state = UnclassifiedState()  # line 19: drop
            report.drops += 1
            self._cidrmax_failures.pop(leaf.prefix, None)

    def _join_pass(self, tree: RangeTree, now: float) -> int:
        """Merge sibling leaves classified to the same logical ingress.

        "Adjacent ranges may also be joined if they share the same
        ingress and meet sample count requirements" (§3.2).  The merged
        parent must itself satisfy its (larger) ``n_cidr`` threshold.

        Every joinable pair has classified children, so starting from
        the classified leaves and cascading upward visits exactly the
        pairs the seed's full postorder walk would — without touching
        the rest of the trie.
        """
        joins = 0
        for leaf in tree.classified_leaves():
            if leaf.dead:
                continue  # merged away by an earlier candidate's cascade
            joins += self._join_cascade(tree, leaf)
        return joins

    def _join_cascade(self, tree: RangeTree, leaf: RangeNode) -> int:
        """Cascade joins upward from one classified leaf.

        Shared by the per-tree join pass and by the sharded runtime's
        cross-boundary reconciliation (which joins two shard roots into
        an aggregator leaf and must then continue the cascade exactly as
        a single engine would).
        """
        params = self.params
        joins = 0
        parent = leaf.parent
        while parent is not None:
            left, right = parent.left, parent.right
            if left is None or right is None:
                break
            if not (left.is_leaf and right.is_leaf):
                break
            left_state, right_state = left._state, right._state
            if not (
                isinstance(left_state, ClassifiedState)
                and isinstance(right_state, ClassifiedState)
            ):
                break
            if left_state.ingress != right_state.ingress:
                break
            combined_total = left_state.total + right_state.total
            threshold = params.n_cidr(parent.prefix.masklen, tree.version)
            if combined_total < threshold:
                break
            self._cidrmax_failures.pop(left.prefix, None)
            self._cidrmax_failures.pop(right.prefix, None)
            tree.join(parent, left_state.merged_with(right_state))
            joins += 1
            parent = parent.parent
        return joins

    # ------------------------------------------------------------------ output

    def snapshot(
        self, now: float, include_unclassified: bool = False
    ) -> list[IPDRecord]:
        """Emit the current mapping in the Table-3 raw output format."""
        self.flush_held()
        params = self.params
        records: list[IPDRecord] = []
        for tree in self.trees.values():
            for leaf in tree.leaves():
                state = leaf.state
                n_cidr = params.n_cidr(leaf.prefix.masklen, tree.version)
                if isinstance(state, ClassifiedState):
                    candidates = tuple(
                        sorted(
                            state.counters.items(),
                            key=lambda item: (-item[1], str(item[0])),
                        )
                    )
                    total = state.total
                    share = state.confidence_for(_members_of(state.ingress))
                    records.append(
                        IPDRecord(
                            timestamp=now,
                            range=leaf.prefix,
                            ingress=state.ingress,
                            s_ingress=share,
                            s_ipcount=total,
                            n_cidr=n_cidr,
                            candidates=candidates,
                            classified=True,
                        )
                    )
                elif include_unclassified and not state.is_empty():
                    totals = state.ingress_totals()
                    found = dominant_ingress(
                        totals,
                        enable_bundles=params.enable_bundles,
                        min_share=params.bundle_min_share,
                    )
                    if found is None:
                        continue
                    ingress, share, __ = found
                    records.append(
                        IPDRecord(
                            timestamp=now,
                            range=leaf.prefix,
                            ingress=ingress,
                            s_ingress=share,
                            s_ipcount=state.sample_count,
                            n_cidr=n_cidr,
                            candidates=tuple(
                                sorted(
                                    totals.items(),
                                    key=lambda item: (-item[1], str(item[0])),
                                )
                            ),
                            classified=False,
                        )
                    )
        records.sort(key=lambda record: (record.version, record.range.value))
        return records

    # ------------------------------------------------------------------ metrics

    def state_size(self) -> int:
        """Total number of tracked (masked IP, ingress) entries + counters.

        A proxy for the RAM footprint used by the parameter study's
        resource-consumption metric.  O(leaves): each state keeps its
        own entry count incrementally.
        """
        return sum(
            leaf._state.entry_count()
            for tree in self.trees.values()
            for leaf in tree.leaves()
        )

    def leaf_count(self) -> int:
        return sum(tree.leaf_count() for tree in self.trees.values())


def _coerce_admission(
    admission: "AdmissionController | AdmissionConfig | None",
) -> "AdmissionController | None":
    """Normalize the ``admission`` constructor argument to a controller."""
    if admission is None or isinstance(admission, AdmissionController):
        return admission
    return AdmissionController(admission)


def _members_of(ingress: IngressPoint) -> tuple[IngressPoint, ...]:
    """Expand a (possibly bundled) logical ingress into raw interfaces."""
    return tuple(
        IngressPoint(ingress.router, name) for name in ingress.interfaces()
    )


def _is_empty_unclassified(node: RangeNode) -> bool:
    return isinstance(node.state, UnclassifiedState) and node.state.is_empty()
