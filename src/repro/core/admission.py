"""Sketch-gated admission front-end for the ingest path.

At deployment scale most source prefixes are one-shot "mice" that never
accumulate to ``n_cidr``, yet every flow pays a full trie insert.  This
module inserts a staged *admit → promote → count* pipeline between
batch decode and trie ingest:

* a seeded **count-min sketch** (Azzana et al.'s Bloom-filter large-flow
  identification, generalized to weighted counts) tracks the volume of
  every masked source cheaply and off-trie;
* sources whose sketch estimate crosses the **promotion threshold**
  (Jurkiewicz's mice/elephant boundary) are promoted to the *elephant
  set* and admitted directly — with a cached leaf handle that bypasses
  the trie lookup entirely on subsequent batches;
* sub-threshold "mice" are **held back**: in ``exact`` mode they are
  buffered and replayed before every sweep (byte-identical output to
  running without admission); in ``lossy`` mode they are dropped and
  only their sketch counts survive (bounded accuracy loss, measured on
  the Fig. 6 benchmark).

Aging is wired to trace time (IPD001): the sketch halves on fixed
``age_seconds`` boundaries of the replayed clock, so a long-idle mouse
must re-earn its promotion.  All hashing is seeded (IPD002) via a
splitmix64 mix of an explicit seed — two controllers built from the
same :class:`AdmissionConfig` make identical decisions on the same
stream, which is what lets per-shard controllers merge.

Saturation safety: a sketch can only ever *over*-estimate, so admission
errors always fall toward admitting more.  When the sketch saturates —
its fill ratio crosses ``max_fill``, or the ``sketch_saturate`` fault
forces it — the controller degrades to admit-everything.  An elephant,
once promoted, is never held or dropped again.

The controller's state (sketch cells, elephant set, held groups, aging
cursor) round-trips through a versioned wire section (``CODEC_VERSION``
below, IPD004-pinned as ``admission:1``) appended to engine blobs by
:meth:`IPD.to_bytes`, so checkpoint/resume and reshard-on-restore carry
admission state with the trie.
"""

from __future__ import annotations

import math
from array import array
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional

from ..devtools.markers import hot_path
from ..topology.elements import IngressPoint
from .statecodec import StateCodecError, _Reader, _Writer

try:  # the vectorized lossy gate; the per-group path covers absence
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..netflow.records import FlowBatch
    from .rangetree import RangeNode

__all__ = [
    "ADMISSION_MODES",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionImage",
    "CODEC_VERSION",
    "CountMinSketch",
    "auto_sketch_width",
    "decode_admission",
    "encode_admission",
    "merge_admission_images",
]

#: bump when the admission wire section changes; pinned as ``admission:1``
CODEC_VERSION = 1

_MAGIC = b"IPDA"
_KIND_ADMISSION = 0x41  # 'A'

_FLAG_SATURATED = 1
_FLAG_LOSSY = 2

_MASK64 = (1 << 64) - 1

#: the admission modes the runtime accepts (``off`` maps to no controller)
ADMISSION_MODES = ("exact", "lossy")

#: group slots, mirroring the ingest-path group layout
_BY_INGRESS = 0
_NEWEST = 1
_OLDEST = 2


def _splitmix64(value: int) -> int:
    """One splitmix64 round; the seeded hash base for sketch rows."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _splitmix64_array(values: "object") -> "object":
    """:func:`_splitmix64` over a uint64 ndarray (wrapping arithmetic).

    Bit-for-bit identical to the scalar form: numpy uint64 ops wrap mod
    2^64 exactly as the masked Python-int version does, so both gate
    paths hash a key to the same sketch cells.
    """
    values = values + _np.uint64(0x9E3779B97F4A7C15)
    values = (values ^ (values >> _np.uint64(30))) * _np.uint64(0xBF58476D1CE4E5B9)
    values = (values ^ (values >> _np.uint64(27))) * _np.uint64(0x94D049BB133111EB)
    return values ^ (values >> _np.uint64(31))


@dataclass(frozen=True)
class AdmissionConfig:
    """Tuning knobs for the admission front-end.

    ``mode`` selects the holdback semantics: ``"exact"`` buffers mice
    and replays them before each sweep (byte-identical to no admission);
    ``"lossy"`` drops them below the threshold.  ``promote_weight`` is
    the sketch-estimate (flow count, or bytes with ``count_bytes``
    params) at which a source is promoted to the elephant set.
    """

    mode: str = "exact"
    #: sketch estimate at which a source becomes an elephant
    promote_weight: float = 4.0
    #: cells per sketch row (rounded up to a power of two)
    width: int = 1 << 14
    #: independent hash rows
    depth: int = 4
    #: seed for the per-row hash salts (IPD002: always explicit)
    seed: int = 0x1905
    #: trace-time interval between sketch halvings
    age_seconds: float = 120.0
    #: nonzero-cell fill ratio beyond which the sketch counts as
    #: saturated and the controller degrades to admit-everything
    max_fill: float = 0.9

    def __post_init__(self) -> None:
        if self.mode not in ADMISSION_MODES:
            raise ValueError(
                f"unknown admission mode {self.mode!r}; "
                f"expected one of {ADMISSION_MODES}"
            )
        if self.width < 1 or self.depth < 1:
            raise ValueError("sketch width and depth must be >= 1")
        if self.promote_weight <= 0.0:
            raise ValueError("promote_weight must be positive")
        if self.age_seconds <= 0.0:
            raise ValueError("age_seconds must be positive")
        if not 0.0 < self.max_fill <= 1.0:
            raise ValueError("max_fill must be in (0, 1]")

    @classmethod
    def for_cardinality(
        cls,
        distinct_sources: int,
        *,
        mode: str = "lossy",
        width: Optional[int] = None,
        promote_weight: float = 4.0,
        depth: int = 4,
        seed: int = 0x1905,
        age_seconds: float = 120.0,
        max_fill: float = 0.9,
    ) -> "AdmissionConfig":
        """A config whose sketch is sized for *distinct_sources* keys.

        The width comes from :func:`auto_sketch_width` unless an
        explicit *width* overrides it — the hand-tuned knob stays
        available, the default stops saturating on source floods.
        """
        if width is None:
            width = auto_sketch_width(distinct_sources, max_fill=max_fill)
        return cls(
            mode=mode,
            promote_weight=promote_weight,
            width=width,
            depth=depth,
            seed=seed,
            age_seconds=age_seconds,
            max_fill=max_fill,
        )


#: the sizing rule targets half the saturation ceiling, leaving aging
#: lag and collision skew a factor-two cushion before degrade-to-admit
_AUTO_FILL_HEADROOM = 0.5

#: never auto-size below the historical default width
_MIN_AUTO_WIDTH = 1 << 14


def auto_sketch_width(
    distinct_sources: int,
    *,
    max_fill: float = 0.9,
    min_width: int = _MIN_AUTO_WIDTH,
) -> int:
    """Smallest power-of-two row width that survives *distinct_sources*.

    After ``n`` distinct keys hash into a row of ``w`` cells, the
    expected nonzero fraction is ``1 - (1 - 1/w)^n ≈ 1 - exp(-n/w)``.
    The controller degrades to admit-everything at ``max_fill``, so the
    rule solves for the width whose expected fill is half that ceiling
    (``w >= n / -ln(1 - max_fill/2)``) and rounds up to a power of two.
    At the default ``max_fill=0.9`` a 100k-source flood sizes to
    ``2^18`` — the width the admission benchmark previously had to
    hand-raise to stay unsaturated.
    """
    if distinct_sources < 0:
        raise ValueError("distinct_sources must be >= 0")
    if not 0.0 < max_fill <= 1.0:
        raise ValueError("max_fill must be in (0, 1]")
    target_fill = max_fill * _AUTO_FILL_HEADROOM
    needed = distinct_sources / -math.log(1.0 - target_fill)
    width = min_width
    while width < needed:
        width <<= 1
    return width


class CountMinSketch:
    """A seeded, weighted count-min sketch with trace-time aging.

    Estimates only ever err upward (hash collisions add foreign weight),
    so a decision gated on ``estimate >= threshold`` can admit a mouse
    early but can never starve an elephant — the safe direction for an
    admission filter.  ``halve`` implements aging: all cells decay by
    half and the fill count is retightened.
    """

    __slots__ = ("width", "depth", "_mask", "_salts", "cells", "fill")

    def __init__(self, width: int, depth: int, seed: int) -> None:
        # round up to a power of two so row indexing is a mask
        actual = 1
        while actual < width:
            actual <<= 1
        self.width = actual
        self.depth = depth
        self._mask = actual - 1
        self._salts = tuple(
            _splitmix64(seed ^ (row * 0x9E3779B97F4A7C15)) for row in range(depth)
        )
        self.cells = array("d", bytes(8 * actual * depth))
        self.fill = 0

    def add(self, key: int, weight: float) -> float:
        """Fold *weight* into every row; returns the updated estimate."""
        cells = self.cells
        mask = self._mask
        width = self.width
        base = 0
        fill = 0
        estimate = float("inf")
        for salt in self._salts:
            index = base + (_splitmix64((key & _MASK64) ^ (key >> 64) ^ salt) & mask)
            value = cells[index]
            if value == 0.0:
                fill += 1
            value += weight
            cells[index] = value
            if value < estimate:
                estimate = value
            base += width
        self.fill += fill
        return estimate

    def estimate(self, key: int) -> float:
        """The current (over-)estimate for *key*, without mutating."""
        cells = self.cells
        mask = self._mask
        width = self.width
        base = 0
        estimate = float("inf")
        for salt in self._salts:
            value = cells[base + (_splitmix64((key & _MASK64) ^ (key >> 64) ^ salt) & mask)]
            if value < estimate:
                estimate = value
            base += width
        return estimate

    def halve(self) -> None:
        """Age every cell by half; cells below one count reset to zero."""
        cells = self.cells
        fill = 0
        for index, value in enumerate(cells):
            if value == 0.0:
                continue
            value *= 0.5
            if value < 0.5:
                value = 0.0
            else:
                fill += 1
            cells[index] = value
        self.fill = fill

    def clear(self) -> None:
        """Drop all counts (used when aging skips many intervals)."""
        self.cells = array("d", bytes(8 * self.width * self.depth))
        self.fill = 0

    @property
    def fill_ratio(self) -> float:
        """Fraction of nonzero cells across all rows."""
        return self.fill / (self.width * self.depth)

    def sparse_cells(self) -> list[tuple[int, float]]:
        """The nonzero cells as ``(index, value)`` pairs (codec form)."""
        return [
            (index, value)
            for index, value in enumerate(self.cells)
            if value != 0.0
        ]

    def load_sparse(self, pairs: "list[tuple[int, float]]") -> None:
        """Replace the cell contents from codec ``(index, value)`` pairs."""
        self.clear()
        cells = self.cells
        size = len(cells)
        fill = 0
        for index, value in pairs:
            if not 0 <= index < size:
                raise StateCodecError(
                    f"sketch cell index {index} out of range (size {size})"
                )
            if value != 0.0 and cells[index] == 0.0:
                fill += 1
            cells[index] = value
        self.fill = fill

    def merge(self, other: "CountMinSketch") -> None:
        """Cellwise-add *other* (same geometry and salts required)."""
        if (
            self.width != other.width
            or self.depth != other.depth
            or self._salts != other._salts
        ):
            raise StateCodecError(
                "cannot merge sketches with different geometry or seed"
            )
        cells = self.cells
        fill = 0
        for index, value in enumerate(other.cells):
            if value == 0.0:
                continue
            if cells[index] == 0.0:
                fill += 1
            cells[index] += value
        self.fill += fill


@dataclass
class AdmissionImage:
    """Codec-neutral snapshot of a controller's state.

    ``sketches`` holds the sparse nonzero cells per address family;
    ``held`` keeps the exact-mode holdback groups in their chronological
    insertion order (the replay order byte-identity depends on).
    """

    mode: str
    promote_weight: float
    width: int
    depth: int
    seed: int
    age_seconds: float
    max_fill: float
    #: aging cursor: the last trace-time boundary applied (None = unset)
    age_boundary: Optional[int] = None
    saturated: bool = False
    #: version -> [(cell index, value), ...]
    sketches: dict[int, list] = field(default_factory=dict)
    #: version -> [masked ip, ...]
    elephants: dict[int, list] = field(default_factory=dict)
    #: version -> {masked: [{ingress: weight}, newest, oldest]}
    held: dict[int, dict[int, list]] = field(default_factory=dict)

    def config(self) -> AdmissionConfig:
        """The :class:`AdmissionConfig` this state was produced under."""
        return AdmissionConfig(
            mode=self.mode,
            promote_weight=self.promote_weight,
            width=self.width,
            depth=self.depth,
            seed=self.seed,
            age_seconds=self.age_seconds,
            max_fill=self.max_fill,
        )


class AdmissionController:
    """Per-engine admission state: sketch, elephant set, holdback buffer.

    One controller fronts one engine's ingest path.  The engine calls
    :meth:`filter_groups` on every pre-grouped batch; held groups are
    drained and replayed by the engine before each sweep (and before
    snapshots), which is what keeps ``exact`` mode byte-identical.
    """

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self.exact = config.mode == "exact"
        self._sketches: dict[int, CountMinSketch] = {}
        self._elephants: dict[int, set[int]] = {}
        self._held: dict[int, dict[int, list]] = {}
        self._handles: dict[int, dict[int, "RangeNode"]] = {}
        # lazily rebuilt sorted-ndarray mirror of each elephant set,
        # keyed by version, cached as (herd size, array) — promotions
        # only ever grow the herd, so a size match means it is current
        self._herd_arrays: dict[int, "tuple[int, object]"] = {}
        self._age_boundary: Optional[int] = None
        self._saturated = False
        # decision counters since the last take_counters() drain
        self.admitted = 0
        self.held_back = 0
        self.dropped = 0
        self.promoted = 0

    # ------------------------------------------------------------------ plumbing

    def sketch(self, version: int) -> CountMinSketch:
        """The (lazily created) per-family sketch."""
        sketch = self._sketches.get(version)
        if sketch is None:
            config = self.config
            sketch = CountMinSketch(config.width, config.depth, config.seed)
            self._sketches[version] = sketch
        return sketch

    def elephants(self, version: int) -> set[int]:
        """The per-family promoted-source set."""
        herd = self._elephants.get(version)
        if herd is None:
            herd = set()
            self._elephants[version] = herd
        return herd

    def handles(self, version: int) -> "dict[int, RangeNode]":
        """Cached elephant leaf handles (the lookup-bypass fast path)."""
        handles = self._handles.get(version)
        if handles is None:
            handles = {}
            self._handles[version] = handles
        return handles

    def held(self, version: int) -> dict[int, list]:
        """The per-family holdback buffer (exact mode)."""
        held = self._held.get(version)
        if held is None:
            held = {}
            self._held[version] = held
        return held

    @property
    def saturated(self) -> bool:
        """True when the controller has degraded to admit-everything."""
        if self._saturated:
            return True
        max_fill = self.config.max_fill
        for sketch in self._sketches.values():
            if sketch.fill_ratio > max_fill:
                return True
        return False

    def saturate(self) -> None:
        """Force admit-everything (the ``sketch_saturate`` fault site)."""
        self._saturated = True

    # ------------------------------------------------------------------ decisions

    def _herd_array(self, version: int) -> "object":
        """The elephant set as a sorted uint64 ndarray (vectorized gate)."""
        herd = self.elephants(version)
        cached = self._herd_arrays.get(version)
        if cached is not None and cached[0] == len(herd):
            return cached[1]
        mirror = _np.fromiter(herd, dtype=_np.uint64, count=len(herd))
        mirror.sort()
        self._herd_arrays[version] = (len(herd), mirror)
        return mirror

    @hot_path
    def prefilter_rows(
        self,
        version: int,
        shift: int,
        sources: "list[int]",
        weights: "Optional[list[int]]" = None,
    ) -> "Optional[list[int]]":
        """Vectorized lossy gate over raw batch columns.

        Runs *before* the per-flow grouping pass, so a dropped mouse
        never pays any Python-level per-flow work: the whole batch is
        masked, sketch-counted and thresholded as ndarray operations,
        and only the surviving row indices are returned for grouping.
        Returns ``None`` to admit every row — exact mode (the holdback
        buffer needs the groups), saturation, numpy unavailable, or a
        mask shift ≥ 64 bits (v6 keys exceed uint64; those batches take
        the per-group path).

        Decision semantics match :meth:`filter_groups` on the same
        batch: weights fold into the same seeded cells (integer-valued,
        so the float sums are exact regardless of add order) and every
        source's estimate is read after the whole batch's weight is in,
        exactly like the per-group path's one summed add per source.
        Promoted sources join the shared elephant set, so the group
        path's herd fast-path and cached leaf handles pick them up.
        """
        if _np is None or self.exact or shift >= 64 or self.saturated:
            return None
        try:
            raw = _np.array(sources, dtype=_np.uint64)
        except (OverflowError, TypeError):  # stray >64-bit key: group path
            return None
        shift_bits = _np.uint64(shift)
        masked = (raw >> shift_bits) << shift_bits
        folded = (
            None
            if weights is None
            else _np.array(weights, dtype=_np.float64)
        )

        # elephants never touch the sketch (same as the group path's
        # herd fast path); only the mice rows feed it below
        herd_mirror = self._herd_array(version)
        if herd_mirror.size:  # type: ignore[attr-defined]
            elephant = _np.isin(masked, herd_mirror)
            mice_rows = _np.nonzero(~elephant)[0]
            if mice_rows.size == 0:
                return None  # the whole batch is promoted traffic
            mice_keys = masked[mice_rows]
            mice_weights = None if folded is None else folded[mice_rows]
        else:
            elephant = None
            mice_rows = None
            mice_keys = masked
            mice_weights = folded

        sketch = self.sketch(version)
        width = sketch.width
        cells = _np.frombuffer(sketch.cells, dtype=_np.float64)
        index_mask = _np.uint64(width - 1)
        estimate = None
        for row, salt in enumerate(sketch._salts):
            indices = (
                (_splitmix64_array(mice_keys ^ _np.uint64(salt)) & index_mask)
                .astype(_np.intp)
            )
            row_cells = cells[row * width:(row + 1) * width]
            row_cells += _np.bincount(
                indices, weights=mice_weights, minlength=width
            )
            gathered = row_cells[indices]
            estimate = (
                gathered
                if estimate is None
                else _np.minimum(estimate, gathered)
            )
        sketch.fill = int(_np.count_nonzero(cells))
        if sketch.fill_ratio > self.config.max_fill:
            return None  # saturated: degrade to admit-everything

        promoted = estimate >= self.config.promote_weight
        if promoted.any():
            herd = self.elephants(version)
            new_keys = _np.unique(mice_keys[promoted]).tolist()
            herd.update(new_keys)
            self.promoted += len(new_keys)
        total = len(raw)
        if elephant is None:
            keep = promoted
        else:
            keep = elephant
            keep[mice_rows[promoted]] = True
        kept = int(_np.count_nonzero(keep))
        if kept == total:
            return None
        self.dropped += total - kept
        rows: "list[int]" = _np.nonzero(keep)[0].tolist()
        return rows

    @hot_path
    def filter_groups(
        self, version: int, groups: "dict[int, list]"
    ) -> "dict[int, list]":
        """Gate pre-grouped samples; returns the admitted subset.

        Each group is ``masked -> [by_ingress, newest, oldest]`` exactly
        as built by the engine's batch grouping pass.  Elephants pass
        straight through; unknown sources update the sketch and are
        promoted, held (exact) or dropped (lossy).  On promotion any
        held history for the source is folded into the admitted group so
        no sample is lost.
        """
        if self.saturated:
            return self._admit_everything(version, groups)
        config = self.config
        threshold = config.promote_weight
        exact = self.exact
        herd = self.elephants(version)
        held = self.held(version)
        sketch = self.sketch(version)
        sketch_add = sketch.add
        held_get = held.get
        admitted: dict[int, list] = {}
        n_admitted = 0
        n_held = 0
        n_dropped = 0
        n_promoted = 0
        for masked, group in groups.items():
            if masked in herd:
                admitted[masked] = group
                n_admitted += 1
                continue
            by_ingress = group[_BY_INGRESS]
            weight = 0.0
            for value in by_ingress.values():
                weight += value
            estimate = sketch_add(masked, weight)
            if estimate >= threshold:
                herd.add(masked)
                n_promoted += 1
                pending = held_get(masked)
                if pending is not None:
                    del held[masked]
                    _merge_group_into(pending, group)
                    group = pending
                admitted[masked] = group
                n_admitted += 1
            elif exact:
                pending = held_get(masked)
                if pending is None:
                    held[masked] = group
                else:
                    _merge_group_into(pending, group)
                n_held += 1
            else:
                n_dropped += 1
        self.admitted += n_admitted
        self.held_back += n_held
        self.dropped += n_dropped
        self.promoted += n_promoted
        return admitted

    def _admit_everything(
        self, version: int, groups: "dict[int, list]"
    ) -> "dict[int, list]":
        """Saturation fallback: admit all groups, folding in held history.

        The degraded mode must never *lose* relative to admission-off:
        every group passes through, and a held mouse's buffered samples
        ride along with its next appearance.
        """
        held = self.held(version)
        if held:
            for masked, group in groups.items():
                pending = held.get(masked)
                if pending is not None:
                    del held[masked]
                    _merge_group_into(pending, group)
                    groups[masked] = pending
        self.admitted += len(groups)
        return groups

    def drain_held(self, version: int) -> dict[int, list]:
        """Detach and return the holdback buffer for replay."""
        held = self._held.get(version)
        if not held:
            return {}
        self._held[version] = {}
        return held

    def has_held(self) -> bool:
        """True when any family has buffered holdback groups."""
        for held in self._held.values():
            if held:
                return True
        return False

    # ------------------------------------------------------------------ aging

    def age_to(self, now: float) -> int:
        """Advance the trace-time aging cursor; returns halvings applied.

        The sketch halves once per elapsed ``age_seconds`` boundary of
        the replayed clock.  Skipping many intervals clears the sketch
        outright (2^-53 of anything is zero weight).
        """
        boundary = int(now // self.config.age_seconds)
        previous = self._age_boundary
        self._age_boundary = boundary
        if previous is None or boundary <= previous:
            return 0
        steps = boundary - previous
        if steps >= 53:
            for sketch in self._sketches.values():
                sketch.clear()
            return steps
        for sketch in self._sketches.values():
            for __ in range(steps):
                sketch.halve()
        return steps

    def take_counters(self) -> tuple[int, int, int, int]:
        """Drain the (admitted, held, dropped, promoted) decision counters."""
        counters = (self.admitted, self.held_back, self.dropped, self.promoted)
        self.admitted = 0
        self.held_back = 0
        self.dropped = 0
        self.promoted = 0
        return counters

    # ------------------------------------------------------------------ batch split

    def partition_batch(
        self, batch: "FlowBatch", cidr_max: int
    ) -> "tuple[FlowBatch, FlowBatch]":
        """Split a columnar batch into (admitted, held) row views.

        The pre-trie form of :meth:`filter_groups` for callers that gate
        whole batches (benchmarks, external pre-filters): rows whose
        masked source is — or becomes — an elephant land in the admitted
        batch, the rest in the held batch.  Row order is preserved and
        the split reuses the batch columns without copying row payloads
        (:meth:`FlowBatch.select`).  Unlike :meth:`filter_groups` this
        does not buffer holdback state; the held view is returned to the
        caller instead.
        """
        version = batch.version
        shift = (128 if version == 6 else 32) - cidr_max
        herd = self.elephants(version)
        sketch = self.sketch(version)
        threshold = self.config.promote_weight
        saturated = self.saturated
        admitted_rows: list[int] = []
        held_rows: list[int] = []
        admitted_append = admitted_rows.append
        held_append = held_rows.append
        for row, src in enumerate(batch.src_ips):
            masked = (src >> shift) << shift
            if saturated or masked in herd:
                admitted_append(row)
                continue
            if sketch.add(masked, 1.0) >= threshold:
                herd.add(masked)
                self.promoted += 1
                admitted_append(row)
            else:
                held_append(row)
        self.admitted += len(admitted_rows)
        self.held_back += len(held_rows)
        return batch.select(admitted_rows), batch.select(held_rows)

    # ------------------------------------------------------------------ state io

    def to_image(self) -> AdmissionImage:
        """Snapshot the controller state as a codec-neutral image."""
        config = self.config
        return AdmissionImage(
            mode=config.mode,
            promote_weight=config.promote_weight,
            width=config.width,
            depth=config.depth,
            seed=config.seed,
            age_seconds=config.age_seconds,
            max_fill=config.max_fill,
            age_boundary=self._age_boundary,
            saturated=self._saturated,
            sketches={
                version: sketch.sparse_cells()
                for version, sketch in self._sketches.items()
                if sketch.fill
            },
            elephants={
                version: sorted(herd)
                for version, herd in self._elephants.items()
                if herd
            },
            held={
                version: {
                    masked: [dict(group[_BY_INGRESS]), group[_NEWEST], group[_OLDEST]]
                    for masked, group in held.items()
                }
                for version, held in self._held.items()
                if held
            },
        )

    @classmethod
    def from_image(cls, image: AdmissionImage) -> "AdmissionController":
        """Rebuild a controller from an image (checkpoint restore)."""
        controller = cls(image.config())
        controller._age_boundary = image.age_boundary
        controller._saturated = image.saturated
        for version, pairs in image.sketches.items():
            controller.sketch(version).load_sparse(pairs)
        for version, herd in image.elephants.items():
            controller.elephants(version).update(herd)
        for version, held in image.held.items():
            buffer = controller.held(version)
            for masked, group in held.items():
                buffer[masked] = [dict(group[_BY_INGRESS]), group[_NEWEST], group[_OLDEST]]
        return controller

    def to_bytes(self) -> bytes:
        """Serialize the controller state as one versioned section."""
        return encode_admission(self.to_image())


def _merge_group_into(target: list, extra: list) -> None:
    """Fold *extra*'s per-ingress weights and time bounds into *target*.

    *target* is the chronologically older group, so insertion order of
    newly seen ingresses matches the order a single unheld stream would
    have produced — the property exact-mode byte-identity rides on.
    """
    by_ingress = target[_BY_INGRESS]
    get = by_ingress.get
    for ingress, weight in extra[_BY_INGRESS].items():
        previous = get(ingress)
        by_ingress[ingress] = weight if previous is None else previous + weight
    if extra[_NEWEST] > target[_NEWEST]:
        target[_NEWEST] = extra[_NEWEST]
    if extra[_OLDEST] < target[_OLDEST]:
        target[_OLDEST] = extra[_OLDEST]


# ---------------------------------------------------------------------------
# wire section (appended to engine blobs; pinned as admission:1)
# ---------------------------------------------------------------------------


def encode_admission(image: AdmissionImage) -> bytes:
    """Serialize an admission image as one versioned trailing section."""
    writer = _Writer()
    writer.raw(_MAGIC)
    writer.byte(_KIND_ADMISSION)
    writer.byte(CODEC_VERSION)
    flags = 0
    if image.saturated:
        flags |= _FLAG_SATURATED
    if image.mode == "lossy":
        flags |= _FLAG_LOSSY
    writer.byte(flags)
    writer.float(image.promote_weight)
    writer.uvarint(image.width)
    writer.uvarint(image.depth)
    writer.uvarint(image.seed)
    writer.float(image.age_seconds)
    writer.float(image.max_fill)
    if image.age_boundary is None:
        writer.byte(0)
    else:
        writer.byte(1)
        writer.uvarint(image.age_boundary)
    writer.uvarint(len(image.sketches))
    for version in sorted(image.sketches):
        writer.byte(version)
        pairs = image.sketches[version]
        writer.uvarint(len(pairs))
        for index, value in pairs:
            writer.uvarint(index)
            writer.float(value)
    writer.uvarint(len(image.elephants))
    for version in sorted(image.elephants):
        herd = image.elephants[version]
        writer.byte(version)
        writer.uvarint(len(herd))
        for masked in herd:
            writer.uvarint(masked)
    writer.uvarint(len(image.held))
    for version in sorted(image.held):
        held = image.held[version]
        writer.byte(version)
        writer.uvarint(len(held))
        for masked, group in held.items():
            writer.uvarint(masked)
            writer.float(group[_NEWEST])
            writer.float(group[_OLDEST])
            by_ingress = group[_BY_INGRESS]
            writer.uvarint(len(by_ingress))
            for ingress, weight in by_ingress.items():
                writer.ingress(ingress)
                writer.float(weight)
    return bytes(writer.buffer)


def decode_admission(data: "bytes | bytearray | memoryview") -> AdmissionImage:
    """Parse an admission section back into an :class:`AdmissionImage`."""
    reader = _Reader(data)
    with _admission_damage_reported(reader):
        if len(data) < 5 or bytes(data[:4]) != _MAGIC:
            raise StateCodecError("not an admission section (bad magic)")
        reader.offset = 4
        kind = reader.byte()
        if kind != _KIND_ADMISSION:
            raise StateCodecError(
                f"unexpected admission section kind {kind:#x}"
            )
        version = reader.byte()
        if version > CODEC_VERSION:
            raise StateCodecError(
                f"admission section uses codec version {version}; this "
                f"build reads up to {CODEC_VERSION}"
            )
        flags = reader.byte()
        promote_weight = reader.float()
        width = reader.uvarint()
        depth = reader.uvarint()
        seed = reader.uvarint()
        age_seconds = reader.float()
        max_fill = reader.float()
        age_boundary = reader.uvarint() if reader.byte() else None
        sketches: dict[int, list[tuple[int, float]]] = {}
        for __ in range(reader.uvarint()):
            family = reader.byte()
            sketches[family] = [
                (reader.uvarint(), reader.float())
                for __ in range(reader.uvarint())
            ]
        elephants: dict[int, list[int]] = {}
        for __ in range(reader.uvarint()):
            family = reader.byte()
            elephants[family] = [
                reader.uvarint() for __ in range(reader.uvarint())
            ]
        held: dict[int, dict[int, list]] = {}
        for __ in range(reader.uvarint()):
            family = reader.byte()
            groups: dict[int, list] = {}
            for __ in range(reader.uvarint()):
                masked = reader.uvarint()
                newest = reader.float()
                oldest = reader.float()
                by_ingress: dict[IngressPoint, float] = {}
                for __ in range(reader.uvarint()):
                    ingress = reader.ingress()
                    by_ingress[ingress] = reader.float()
                groups[masked] = [by_ingress, newest, oldest]
            held[family] = groups
        return AdmissionImage(
            mode="lossy" if flags & _FLAG_LOSSY else "exact",
            promote_weight=promote_weight,
            width=width,
            depth=depth,
            seed=seed,
            age_seconds=age_seconds,
            max_fill=max_fill,
            age_boundary=age_boundary,
            saturated=bool(flags & _FLAG_SATURATED),
            sketches=sketches,
            elephants=elephants,
            held=held,
        )


def merge_admission_images(
    images: "list[Optional[AdmissionImage]]",
) -> Optional[AdmissionImage]:
    """Merge per-shard admission images into one engine-wide image.

    Sketches add cellwise (identical geometry/seed required — shards are
    always built from one config), elephant sets union, held groups
    union (address-space sharding makes their key sets disjoint), and
    saturation is sticky across the fleet.  Over-counting from the merge
    only ever admits *more*, which is the safe direction.
    """
    images = [image for image in images if image is not None]
    if not images:
        return None
    first = images[0]
    merged_sketches: dict[int, CountMinSketch] = {}
    merged_elephants: dict[int, set[int]] = {}
    merged_held: dict[int, dict[int, list]] = {}
    saturated = False
    age_boundary: Optional[int] = None
    for image in images:
        if (
            image.width != first.width
            or image.depth != first.depth
            or image.seed != first.seed
            or image.mode != first.mode
        ):
            raise StateCodecError(
                "cannot merge admission images with different configs"
            )
        saturated = saturated or image.saturated
        if image.age_boundary is not None:
            age_boundary = (
                image.age_boundary
                if age_boundary is None
                else max(age_boundary, image.age_boundary)
            )
        for version, pairs in image.sketches.items():
            sketch = merged_sketches.get(version)
            if sketch is None:
                sketch = CountMinSketch(first.width, first.depth, first.seed)
                merged_sketches[version] = sketch
            incoming = CountMinSketch(first.width, first.depth, first.seed)
            incoming.load_sparse(pairs)
            sketch.merge(incoming)
        for version, herd in image.elephants.items():
            merged_elephants.setdefault(version, set()).update(herd)
        for version, held in image.held.items():
            target = merged_held.setdefault(version, {})
            for masked, group in held.items():
                pending = target.get(masked)
                if pending is None:
                    target[masked] = [
                        dict(group[_BY_INGRESS]), group[_NEWEST], group[_OLDEST]
                    ]
                else:
                    _merge_group_into(pending, group)
    return AdmissionImage(
        mode=first.mode,
        promote_weight=first.promote_weight,
        width=first.width,
        depth=first.depth,
        seed=first.seed,
        age_seconds=first.age_seconds,
        max_fill=first.max_fill,
        age_boundary=age_boundary,
        saturated=saturated,
        sketches={
            version: sketch.sparse_cells()
            for version, sketch in merged_sketches.items()
        },
        elephants={
            version: sorted(herd)
            for version, herd in merged_elephants.items()
        },
        held=merged_held,
    )


@contextmanager
def _admission_damage_reported(reader: _Reader) -> Iterator[None]:
    """Normalize admission-section decode failures into codec errors."""
    try:
        yield
    except StateCodecError as exc:
        if exc.offset is None:
            exc.offset = reader.offset
        raise
    except (ValueError, KeyError, IndexError, OverflowError) as exc:
        raise StateCodecError(
            f"damaged admission section at offset {reader.offset}: {exc!r}",
            offset=reader.offset,
        ) from exc
