"""Compatibility façades over the pipeline runtime.

The replay and deployment loops moved to :mod:`repro.runtime`:

* :class:`OfflineDriver` is now a thin façade over
  :class:`~repro.runtime.pipeline.Pipeline` — same constructor, same
  ``run`` / ``run_incremental`` semantics, same event-driven grid
  (sweeps at ``t``-second boundaries of the trace clock, snapshots every
  ``snapshot_seconds``).  New code should construct a ``Pipeline``
  directly; it adds address-space sharding (``shards=N``) and a choice
  of executors (``serial`` / ``threaded`` / ``mp``).
* :class:`ThreadedIPD` is a deprecated alias of
  :class:`~repro.runtime.live.LivePipeline`, the deployment's two-thread
  layout (§3.2, §5.7).  It additionally gained the queue-drain guarantee
  on ``stop()``: no submitted flow is lost to the stop race.
* :class:`RunResult` is re-exported from :mod:`repro.runtime.result`.
"""

from __future__ import annotations

import warnings
from typing import Callable, Optional

from ..runtime.live import LivePipeline
from ..runtime.pipeline import Pipeline
from ..runtime.result import RunResult
from .algorithm import IPD, SweepReport
from .params import IPDParams

__all__ = ["OfflineDriver", "RunResult", "ThreadedIPD"]


class OfflineDriver(Pipeline):
    """Single-engine offline replay (façade over :class:`Pipeline`).

    Kept with its original constructor signature; ``driver.ipd`` still
    names the engine.  Equivalent to
    ``Pipeline(params, shards=1, executor="serial", ...)``.
    """

    def __init__(
        self,
        params: IPDParams | None = None,
        snapshot_seconds: float = 300.0,
        include_unclassified: bool = False,
        on_sweep: Optional[Callable[[SweepReport, IPD], None]] = None,
    ) -> None:
        super().__init__(
            params=params,
            snapshot_seconds=snapshot_seconds,
            include_unclassified=include_unclassified,
            on_sweep=on_sweep,
        )

    @property
    def ipd(self) -> IPD:
        """The underlying engine (compatibility alias for ``engine``)."""
        return self.engine


class ThreadedIPD(LivePipeline):
    """Deprecated alias of :class:`~repro.runtime.live.LivePipeline`.

    The two-thread deployment layout lives in the runtime package now;
    this name is kept so existing imports and subclasses keep working.
    Use ``LivePipeline`` in new code — it accepts the same arguments
    plus the ``shards`` / ``executor`` / ``workers`` knobs.
    """

    def __init__(
        self,
        params: IPDParams | None = None,
        sweep_interval: float = 1.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        warnings.warn(
            "ThreadedIPD is deprecated; use repro.runtime.LivePipeline",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(params=params, sweep_interval=sweep_interval, clock=clock)
