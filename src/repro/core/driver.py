"""Drivers that connect flow streams to the IPD engine.

* :class:`OfflineDriver` — deterministic, event-driven replay on flow
  timestamps ("simulated time"): sweeps fire exactly at ``t``-second
  boundaries of the trace clock, snapshots are emitted every
  ``snapshot_seconds`` (the deployment publishes 5-minute bins, §4).
  All analyses and benchmarks use this driver.
* :class:`ThreadedIPD` — the deployment layout (§3.2, §5.7): one ingest
  thread draining a queue, one sweep thread ticking on the wall clock.
  Provided for completeness and for the quickstart's live mode; results
  are equivalent but timing-dependent.
"""

from __future__ import annotations

import queue
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Union

from ..netflow.records import FlowBatch, FlowRecord
from .algorithm import IPD, SweepReport
from .output import IPDRecord
from .params import IPDParams

__all__ = ["OfflineDriver", "RunResult", "ThreadedIPD"]


@dataclass
class RunResult:
    """Everything an offline replay produced."""

    #: snapshot timestamp -> records (Table-3 rows) at that time
    snapshots: dict[float, list[IPDRecord]] = field(default_factory=dict)
    sweeps: list[SweepReport] = field(default_factory=list)
    flows_processed: int = 0

    def snapshot_times(self) -> list[float]:
        return sorted(self.snapshots)

    def final_snapshot(self) -> list[IPDRecord]:
        if not self.snapshots:
            return []
        return self.snapshots[max(self.snapshots)]


class OfflineDriver:
    """Replays a time-ordered flow stream through an :class:`IPD` engine."""

    def __init__(
        self,
        params: IPDParams | None = None,
        snapshot_seconds: float = 300.0,
        include_unclassified: bool = False,
        on_sweep: Optional[Callable[[SweepReport, IPD], None]] = None,
    ) -> None:
        if snapshot_seconds <= 0:
            raise ValueError("snapshot_seconds must be positive")
        self.ipd = IPD(params)
        self.snapshot_seconds = snapshot_seconds
        self.include_unclassified = include_unclassified
        self.on_sweep = on_sweep

    def run(self, flows: "Iterable[Union[FlowRecord, FlowBatch]]") -> RunResult:
        """Replay *flows* (non-decreasing timestamps) to completion."""
        result = RunResult()
        for __ in self.run_incremental(flows, result):
            pass
        return result

    def run_incremental(
        self,
        flows: "Iterable[Union[FlowRecord, FlowBatch]]",
        result: RunResult | None = None,
    ) -> Iterator[tuple[float, list[IPDRecord]]]:
        """Like :meth:`run` but yields ``(time, records)`` per snapshot.

        The stream may mix :class:`FlowRecord` items and columnar
        :class:`FlowBatch` runs; timestamps must be non-decreasing
        across and within items.  A batch spanning a sweep boundary is
        cut at the boundary (binary search on its timestamp column) so
        "all ingest before each sweep tick" holds exactly as in the
        per-flow replay.
        """
        ipd = self.ipd
        t = ipd.params.t
        result = result if result is not None else RunResult()
        next_sweep: float | None = None
        next_snapshot: float | None = None
        last_time: float | None = None

        def _boundary(when: float) -> Iterator[tuple[float, list[IPDRecord]]]:
            # advance sweep/snapshot grids up to (and including) `when`
            nonlocal next_sweep, next_snapshot
            while when >= next_sweep:  # type: ignore[operator]
                yield from self._tick(next_sweep, result)
                if next_snapshot is not None and next_sweep >= next_snapshot:
                    records = ipd.snapshot(
                        next_sweep, include_unclassified=self.include_unclassified
                    )
                    result.snapshots[next_sweep] = records
                    yield next_sweep, records
                    next_snapshot += self.snapshot_seconds
                next_sweep += t

        for item in flows:
            if isinstance(item, FlowBatch):
                timestamps = item.timestamps
                if not timestamps:
                    continue
                first_time = timestamps[0]
                if last_time is not None and first_time < last_time - 1e-9:
                    raise ValueError(
                        "flow stream is not time-ordered: "
                        f"{first_time} after {last_time}"
                    )
                if any(
                    timestamps[i] > timestamps[i + 1]
                    for i in range(len(timestamps) - 1)
                ):
                    raise ValueError("FlowBatch is not time-ordered internally")
                last_time = timestamps[-1]
                if next_sweep is None:
                    next_sweep = (int(first_time // t) + 1) * t
                    next_snapshot = (
                        int(first_time // self.snapshot_seconds) + 1
                    ) * self.snapshot_seconds
                start = 0
                total = len(timestamps)
                while start < total:
                    yield from _boundary(timestamps[start])
                    end = bisect_left(timestamps, next_sweep, start)
                    if start == 0 and end == total:
                        ipd.ingest_batch(item)
                    else:
                        ipd.ingest_batch(item.slice(start, end))
                    result.flows_processed += end - start
                    start = end
                continue
            flow = item
            if last_time is not None and flow.timestamp < last_time - 1e-9:
                raise ValueError(
                    "flow stream is not time-ordered: "
                    f"{flow.timestamp} after {last_time}"
                )
            last_time = flow.timestamp
            if next_sweep is None:
                # Align sweep/snapshot grids to the trace start.
                next_sweep = (int(flow.timestamp // t) + 1) * t
                next_snapshot = (
                    int(flow.timestamp // self.snapshot_seconds) + 1
                ) * self.snapshot_seconds
            yield from _boundary(flow.timestamp)
            ipd.ingest(flow)
            result.flows_processed += 1

        if last_time is not None and next_sweep is not None:
            # Close the final bucket.
            yield from self._tick(next_sweep, result)
            records = ipd.snapshot(
                next_sweep, include_unclassified=self.include_unclassified
            )
            result.snapshots[next_sweep] = records
            yield next_sweep, records

    def _tick(
        self, when: float, result: RunResult
    ) -> Iterator[tuple[float, list[IPDRecord]]]:
        report = self.ipd.sweep(when)
        result.sweeps.append(report)
        if self.on_sweep is not None:
            self.on_sweep(report, self.ipd)
        return iter(())


class ThreadedIPD:
    """The two-thread deployment layout: ingest queue + periodic sweeps.

    Stage 1 runs in a consumer thread fed through :meth:`submit`; Stage 2
    runs in a timer thread every ``sweep_interval`` wall-clock seconds
    (scaled down from the trace's ``t`` for interactive use).  A single
    lock serializes trie access — the deployment similarly runs Stage 2
    single-threaded (§3.2).
    """

    def __init__(
        self,
        params: IPDParams | None = None,
        sweep_interval: float = 1.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        import time as _time

        self.ipd = IPD(params)
        self.sweep_interval = sweep_interval
        self._clock = clock or _time.monotonic
        self._queue: "queue.Queue[FlowRecord | FlowBatch | None]" = queue.Queue(
            maxsize=100_000
        )
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._ingest_thread: threading.Thread | None = None
        self._sweep_thread: threading.Thread | None = None
        self.sweep_reports: list[SweepReport] = []

    def start(self) -> None:
        if self._ingest_thread is not None:
            raise RuntimeError("already started")
        self._ingest_thread = threading.Thread(
            target=self._ingest_loop, name="ipd-stage1", daemon=True
        )
        self._sweep_thread = threading.Thread(
            target=self._sweep_loop, name="ipd-stage2", daemon=True
        )
        self._ingest_thread.start()
        self._sweep_thread.start()

    def submit(self, flow: FlowRecord, restamp: bool = True) -> None:
        """Enqueue one flow for Stage-1 ingestion.

        By default the flow is re-stamped with the live clock so that
        expiry and decay operate on a single time base (the trace clock
        of a replayed file would otherwise disagree with the sweep
        thread's wall clock).
        """
        if restamp:
            flow = flow.with_timestamp(self._clock())
        self._queue.put(flow)

    def submit_batch(self, batch: FlowBatch, restamp: bool = True) -> None:
        """Enqueue a columnar batch for Stage-1 ingestion.

        One queue item per batch: the consumer drains it through the
        amortized ``ingest_batch`` path under a single lock acquisition,
        which is where the deployment layout gains its throughput.
        """
        if restamp:
            now = self._clock()
            batch = FlowBatch(
                batch.version,
                [now] * len(batch.timestamps),
                batch.src_ips,
                batch.ingresses,
                batch.packet_counts,
                batch.byte_counts,
                batch.dst_ips,
            )
        self._queue.put(batch)

    def stop(self) -> None:
        """Drain the queue, stop both threads, run one final sweep."""
        self._queue.put(None)
        if self._ingest_thread is not None:
            self._ingest_thread.join()
        self._stop.set()
        if self._sweep_thread is not None:
            self._sweep_thread.join()
        with self._lock:
            self.sweep_reports.append(self.ipd.sweep(self._clock()))

    def snapshot(self, include_unclassified: bool = False) -> list[IPDRecord]:
        with self._lock:
            return self.ipd.snapshot(
                self._clock(), include_unclassified=include_unclassified
            )

    def _ingest_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            with self._lock:
                if isinstance(item, FlowBatch):
                    self.ipd.ingest_batch(item)
                else:
                    self.ipd.ingest(item)

    def _sweep_loop(self) -> None:
        while not self._stop.wait(self.sweep_interval):
            with self._lock:
                self.sweep_reports.append(self.ipd.sweep(self._clock()))
