"""Markers consumed by the static-analysis suite.

:func:`hot_path` tags the Stage-1/Stage-2 functions whose allocation
behaviour is pinned by lint rule **IPD005** (hot-path hygiene).  The
marker is *deliberately* the identity function — it returns the
undecorated function object unchanged, adds no wrapper frame, and costs
nothing at call time.  ``benchmarks/perf/run_all.py`` asserts this
identity before every benchmark run, so the marker can never silently
grow instrumentation that would slow ingest or sweeps.

The lint rules find the marker *syntactically* (a ``@hot_path``
decorator in the AST); nothing at runtime depends on it.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["hot_path"]

F = TypeVar("F", bound=Callable[..., object])


def hot_path(func: F) -> F:
    """Mark *func* as a hot path for lint rule IPD005.  Identity: no wrapper."""
    return func
