"""Project-wide module/symbol graph for the cross-module lint rules.

The per-file rules (IPD001–IPD008) each look at one AST in isolation.
The dataflow rules (IPD009–IPD012) need to see *across* files: which
class a constructor call resolves to through import aliases, which
attributes a class ever assigns, which methods a ``Writer``/``Reader``
pair exposes, which functions a worker loop calls.  This module builds
that picture once per lint run:

* :class:`ModuleInfo` — one scanned module: its dotted name (derived
  from ``__init__.py`` package markers), import alias tables with
  relative imports resolved, class table (:class:`ClassInfo` with
  methods, base names and set-typed attributes), module-level function
  table, module-level constants, and coarse call edges.
* :class:`ProjectGraph` — the scanned set as a whole, with cross-module
  symbol resolution (:meth:`ProjectGraph.resolve_class`), transitive
  base-class ancestry, and project-level summaries the rules consume.

Caching
-------

Cross-module findings are cached by file content hash: the cache key is
a digest over the sorted ``(relative path, sha256(file bytes))`` pairs
of every scanned file plus each project rule's code and configuration
(and the invoking cwd, because finding paths are cwd-relative).  Any
byte changed anywhere invalidates the key — deliberately conservative,
because a cross-module rule's findings for one file can depend on any
other file — while a fully unchanged tree skips the whole analysis, so
warm CI runs stay fast (see the timing gate in the static-analysis
job).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

from .framework import Rule, SourceFile, collect_import_aliases

__all__ = [
    "ANALYZER_VERSION",
    "ClassInfo",
    "ModuleInfo",
    "ProjectGraph",
    "FindingsCache",
    "project_cache_key",
]

#: bumped whenever the analyzer's semantics change, so stale cached
#: findings from an older analyzer can never satisfy a newer gate
ANALYZER_VERSION = 1

_SET_CALLS = {"set", "frozenset"}


def _is_set_expr(expr: ast.expr) -> bool:
    """True for expressions that build an unordered set value."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in _SET_CALLS
    return False


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    """True when a type annotation denotes a set type."""
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    if isinstance(target, ast.Attribute):
        return target.attr in ("Set", "FrozenSet", "AbstractSet")
    if isinstance(target, ast.Constant) and isinstance(target.value, str):
        head = target.value.split("[", 1)[0].strip()
        return head in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")
    return False


def _base_name(base: ast.expr) -> Optional[str]:
    """The source-level bare name of a class base (``Sink``, ``ipd.Sink``)."""
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


@dataclass
class ClassInfo:
    """One class definition: methods, bases, and attribute facts."""

    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: "dict[str, ast.FunctionDef | ast.AsyncFunctionDef]" = field(
        default_factory=dict
    )
    #: attributes ever assigned a set-valued expression (``self.x = set()``)
    #: or annotated as a set type inside this class's methods
    set_attrs: set[str] = field(default_factory=set)

    @property
    def qualname(self) -> str:
        return f"{self.module.name}.{self.name}"


@dataclass
class ModuleInfo:
    """One scanned module's symbol tables."""

    source: SourceFile
    name: str
    module_aliases: dict[str, str] = field(default_factory=dict)
    symbol_aliases: "dict[str, tuple[str, str]]" = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    functions: "dict[str, ast.FunctionDef | ast.AsyncFunctionDef]" = field(
        default_factory=dict
    )
    #: module-level single-target constant assignments (name -> value expr)
    constants: dict[str, ast.expr] = field(default_factory=dict)
    #: coarse call edges: (caller qualname, callee dotted source name)
    call_edges: "list[tuple[str, str]]" = field(default_factory=list)

    @property
    def stem(self) -> str:
        return Path(self.source.path).stem

    def resolve_symbol_module(self, local: str) -> Optional[str]:
        """The dotted module a local symbol was imported from, if any."""
        entry = self.symbol_aliases.get(local)
        if entry is None:
            return None
        module, _symbol = entry
        if not module.startswith("."):
            return module
        # resolve a relative import against this module's package
        level = len(module) - len(module.lstrip("."))
        parts = self.name.split(".")
        base = parts[: max(len(parts) - level, 0)]
        tail = module.lstrip(".")
        return ".".join(base + ([tail] if tail else []))


def _module_name(path: Path) -> str:
    """Best-effort dotted module name from package ``__init__.py`` markers."""
    resolved = path.resolve()
    parts = [resolved.stem]
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__" and len(parts) > 1:
        parts = parts[1:]
    return ".".join(reversed(parts))


def _callee_name(func: ast.expr) -> Optional[str]:
    """Dotted source text of a call target (``f``, ``mod.f``, ``self.m``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        prefix = _callee_name(func.value)
        return f"{prefix}.{func.attr}" if prefix else None
    return None


def _extract_module(source: SourceFile) -> ModuleInfo:
    tree = source.tree
    assert tree is not None  # callers skip unparsable files
    modules, symbols = source.import_aliases()
    info = ModuleInfo(
        source=source,
        name=_module_name(Path(source.path)),
        module_aliases=modules,
        symbol_aliases=symbols,
    )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[node.name] = node
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                info.constants[target.id] = node.value
        elif isinstance(node, ast.ClassDef):
            info.classes[node.name] = _extract_class(node, info)
    _extract_call_edges(info, tree)
    return info


def _extract_class(node: ast.ClassDef, module: ModuleInfo) -> ClassInfo:
    cls = ClassInfo(name=node.name, module=module, node=node)
    for base in node.bases:
        name = _base_name(base)
        if name is not None:
            cls.bases.append(name)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[stmt.name] = stmt
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.Assign):
                    if _is_set_expr(inner.value):
                        for target in inner.targets:
                            attr = _self_attr(target)
                            if attr is not None:
                                cls.set_attrs.add(attr)
                elif isinstance(inner, ast.AnnAssign):
                    attr = _self_attr(inner.target)
                    if attr is not None and _annotation_is_set(inner.annotation):
                        cls.set_attrs.add(attr)
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and _annotation_is_set(
                stmt.annotation
            ):
                cls.set_attrs.add(stmt.target.id)
    return cls


def _self_attr(target: ast.expr) -> Optional[str]:
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def _extract_call_edges(info: ModuleInfo, tree: ast.Module) -> None:
    """Record coarse (caller qualname, callee name) edges for the module."""

    def walk_scope(
        body: Sequence[ast.stmt], qualname: str
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner_qual = f"{qualname}.{stmt.name}" if qualname else stmt.name
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        callee = _callee_name(node.func)
                        if callee is not None:
                            info.call_edges.append((inner_qual, callee))
            elif isinstance(stmt, ast.ClassDef):
                cls_qual = f"{qualname}.{stmt.name}" if qualname else stmt.name
                walk_scope(stmt.body, cls_qual)

    walk_scope(tree.body, "")


class ProjectGraph:
    """The scanned file set as one resolvable symbol graph."""

    def __init__(self, sources: Sequence[SourceFile]) -> None:
        self.modules: list[ModuleInfo] = [
            _extract_module(source)
            for source in sources
            if source.tree is not None
        ]
        self.by_name: dict[str, ModuleInfo] = {
            module.name: module for module in self.modules
        }
        self._classes_by_name: dict[str, list[ClassInfo]] = {}
        for module in self.modules:
            for cls in module.classes.values():
                self._classes_by_name.setdefault(cls.name, []).append(cls)

    # -- lookup --------------------------------------------------------------

    def modules_with_stem(self, stems: Sequence[str]) -> Iterator[ModuleInfo]:
        wanted = set(stems)
        for module in self.modules:
            if module.stem in wanted:
                yield module

    def classes_named(self, name: str) -> list[ClassInfo]:
        return list(self._classes_by_name.get(name, []))

    def resolve_class(
        self, module: ModuleInfo, name: str
    ) -> Optional[ClassInfo]:
        """Resolve a bare name used in *module* to a scanned class.

        Checks the module's own class table first, then follows a
        ``from x import name`` alias into the defining module if that
        module was scanned too.
        """
        local = module.classes.get(name)
        if local is not None:
            return local
        entry = module.symbol_aliases.get(name)
        if entry is not None:
            target_module = module.resolve_symbol_module(name)
            _origin, symbol = entry
            if target_module is not None:
                defining = self.by_name.get(target_module)
                if defining is not None and symbol in defining.classes:
                    return defining.classes[symbol]
            # fall back to a unique bare-name match across the project
            candidates = self.classes_named(symbol)
            if len(candidates) == 1:
                return candidates[0]
        return None

    def ancestry(self, cls: ClassInfo) -> set[str]:
        """Transitive base-class *names* of *cls*, including its own."""
        seen: set[str] = set()
        frontier = [cls]
        while frontier:
            current = frontier.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            for base in current.bases:
                if base in seen:
                    continue
                resolved = self.resolve_class(current.module, base)
                if resolved is not None:
                    frontier.append(resolved)
                else:
                    seen.add(base)
        return seen

    # -- project-level summaries --------------------------------------------

    def set_attr_names(self) -> set[str]:
        """Attribute names any scanned class assigns a set value to."""
        names: set[str] = set()
        for module in self.modules:
            for cls in module.classes.values():
                names.update(cls.set_attrs)
        return names

    def set_returning_callables(self) -> set[str]:
        """Function/method names whose return annotation is a set type."""
        names: set[str] = set()
        for module in self.modules:
            for name, func in module.functions.items():
                if _annotation_is_set(func.returns):
                    names.add(name)
            for cls in module.classes.values():
                for name, method in cls.methods.items():
                    if _annotation_is_set(method.returns):
                        names.add(name)
        return names

    def callees_of(self, qualname_suffix: str) -> set[str]:
        """Bare callee names reachable (one hop) from matching callers."""
        out: set[str] = set()
        for module in self.modules:
            for caller, callee in module.call_edges:
                if caller == qualname_suffix or caller.endswith(
                    "." + qualname_suffix
                ):
                    out.add(callee.rsplit(".", 1)[-1])
        return out


# ---------------------------------------------------------------------------
# findings cache (content-hash keyed)
# ---------------------------------------------------------------------------


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def project_cache_key(
    sources: Sequence[SourceFile], rules: Sequence[Rule]
) -> str:
    """Cache key for one cross-module analysis run.

    Keyed by every scanned file's content hash plus each rule's code
    and instance configuration; any changed byte, rule set, or rule
    config produces a different key.
    """
    payload = {
        "analyzer": ANALYZER_VERSION,
        "cwd": str(Path.cwd()),
        "rules": sorted(
            (
                rule.code,
                repr(sorted((k, repr(v)) for k, v in vars(rule).items())),
            )
            for rule in rules
        ),
        "files": sorted(
            (source.rel, _digest(source.text.encode("utf-8")))
            for source in sources
        ),
    }
    return _digest(json.dumps(payload, sort_keys=True).encode("utf-8"))


class FindingsCache:
    """Tiny on-disk JSON cache for cross-module findings.

    One file per key under *directory*; a missing or unreadable entry
    is a miss (the analysis re-runs), never an error.
    """

    def __init__(self, directory: "Path | str") -> None:
        self.directory = Path(directory)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> "Optional[dict[str, object]]":
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("analyzer") != ANALYZER_VERSION:
            return None
        findings = payload.get("findings")
        suppressed = payload.get("suppressed")
        if not isinstance(findings, list) or not isinstance(suppressed, int):
            return None
        return {"findings": findings, "suppressed": suppressed}

    def store(self, key: str, payload: "dict[str, object]") -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        body = dict(payload)
        body["analyzer"] = ANALYZER_VERSION
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        try:
            tmp.write_text(
                json.dumps(body, sort_keys=True), encoding="utf-8"
            )
            tmp.replace(path)
        except OSError:
            # caching is best-effort; a full re-run is always correct
            return
