"""The repo-specific lint rules (IPD001–IPD008).

Each rule encodes one load-bearing invariant of the reproduction; the
``invariant`` attribute is the sentence DESIGN.md §10 documents.  Rules
are registered on import and instantiated per run by
:func:`repro.devtools.framework.build_rules`.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, Optional

from .codecguard import (
    DEFAULT_PIN_PATH,
    extract_codec_version,
    load_pins,
    pin_for,
    structural_fingerprint,
)
from .framework import (
    ContextVisitor,
    Finding,
    Rule,
    SourceFile,
    VisitorRule,
    register,
)

__all__ = [
    "NoWallclockRule",
    "SeededRngRule",
    "ExceptionTaxonomyRule",
    "CodecGuardRule",
    "HotPathHygieneRule",
    "FaultSeamRule",
    "NoPickleHotPathRule",
    "LookupAllocRule",
]


# ---------------------------------------------------------------------------
# IPD001 — no wall-clock in engine code
# ---------------------------------------------------------------------------

#: wall-clock reads that make replay output depend on the host clock;
#: ``time.perf_counter`` is *not* listed — duration metrics (sweep
#: timing) are allowed because no classification decision reads them
_WALLCLOCK_TIME_ATTRS = {"time", "monotonic", "monotonic_ns", "time_ns"}


class _WallclockVisitor(ContextVisitor):
    def visit_Attribute(self, node: ast.Attribute) -> None:
        value = node.value
        if self._names_module(value, "time"):
            if node.attr in _WALLCLOCK_TIME_ATTRS:
                self.report(
                    node,
                    f"wall-clock read time.{node.attr}: engine code must use "
                    "trace timestamps or an injected clock",
                )
        if node.attr == "utcnow":
            self.report(
                node,
                "datetime.utcnow() reads the wall clock; engine code must "
                "use trace timestamps or an injected clock",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "now"
            and not node.args
            and not node.keywords
            and self._mentions_datetime(func.value)
        ):
            self.report(
                node,
                "argless datetime.now() reads the local wall clock; pass an "
                "explicit timezone-aware source or inject a clock",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _WALLCLOCK_TIME_ATTRS:
                    self.report(
                        node,
                        f"importing {alias.name} from time pulls a wall-clock "
                        "read into engine code",
                    )
        self.generic_visit(node)

    def _names_module(self, value: ast.expr, module: str) -> bool:
        """True when *value* denotes *module*, through any import alias."""
        if not isinstance(value, ast.Name):
            return False
        if value.id == module:
            return True
        module_aliases, _ = self.source.import_aliases()
        return module_aliases.get(value.id) == module

    def _mentions_datetime(self, value: ast.expr) -> bool:
        if isinstance(value, ast.Name):
            if value.id in ("datetime", "dt") or self._names_module(
                value, "datetime"
            ):
                return True
            _, symbol_aliases = self.source.import_aliases()
            return symbol_aliases.get(value.id) == ("datetime", "datetime")
        if isinstance(value, ast.Attribute):
            # d.datetime.now() — the module half is checked by the
            # attr name; the base may itself be an import alias
            return value.attr == "datetime"
        return False


@register
class NoWallclockRule(VisitorRule):
    code = "IPD001"
    name = "no-wallclock"
    invariant = (
        "Engine code never reads the wall clock: time.time / time.monotonic "
        "/ argless datetime.now() are banned outside perf_counter timing "
        "sites and LivePipeline's injectable clock default."
    )
    visitor_class = _WallclockVisitor


# ---------------------------------------------------------------------------
# IPD002 — all randomness is explicitly seeded
# ---------------------------------------------------------------------------


class _SeededRngVisitor(ContextVisitor):
    def visit_Attribute(self, node: ast.Attribute) -> None:
        value = node.value
        if isinstance(value, ast.Name):
            if value.id == "random" and node.attr != "Random":
                self.report(
                    node,
                    f"module-level random.{node.attr} uses the shared "
                    "unseeded RNG; build a random.Random(seed) instead",
                )
            elif value.id in ("np", "numpy") and node.attr == "random":
                self.report(
                    node,
                    "numpy.random global state is unseeded across runs; use "
                    "numpy.random.Generator seeded explicitly (or stdlib "
                    "random.Random(seed))",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        is_random_ctor = (isinstance(func, ast.Name) and func.id == "Random") or (
            isinstance(func, ast.Attribute)
            and func.attr == "Random"
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
        )
        if is_random_ctor and not node.args and not node.keywords:
            self.report(
                node,
                "random.Random() without a seed is nondeterministic; pass an "
                "explicit seed",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    self.report(
                        node,
                        f"importing {alias.name} from random binds the shared "
                        "unseeded RNG; import Random and seed it",
                    )
        elif node.module in ("numpy", "numpy.random") and any(
            alias.name == "random" or node.module == "numpy.random"
            for alias in node.names
        ):
            self.report(
                node,
                "numpy.random global state is unseeded across runs; use a "
                "seeded numpy.random.Generator",
            )
        self.generic_visit(node)


@register
class SeededRngRule(VisitorRule):
    code = "IPD002"
    name = "seeded-rng"
    invariant = (
        "All randomness flows through explicitly seeded generators: no "
        "module-level random.*, no unseeded random.Random(), no "
        "numpy.random global state in src/repro."
    )
    visitor_class = _SeededRngVisitor


# ---------------------------------------------------------------------------
# IPD003 — typed exception taxonomy on runtime failure paths
# ---------------------------------------------------------------------------

#: raising these directly loses the typed taxonomy the recovery paths
#: dispatch on (WorkerCrashError / StateCodecError / CheckpointCorruptError …)
_GENERIC_RAISES = {"Exception", "BaseException", "RuntimeError"}

_BROAD_EXCEPTS = {"Exception", "BaseException"}


class _ExceptionTaxonomyVisitor(ContextVisitor):
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare except: swallows everything including KeyboardInterrupt;"
                " catch the typed exceptions the failure path documents",
            )
        elif self._is_broad(node.type) and not self._reraises(node):
            self.report(
                node,
                "except Exception that does not re-raise silently swallows "
                "failures; narrow to the typed hierarchy or re-raise",
            )
        self.generic_visit(node)

    def visit_Raise(self, node: ast.Raise) -> None:
        exc = node.exc
        target = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(target, ast.Name) and target.id in _GENERIC_RAISES:
            self.report(
                node,
                f"raise {target.id} is untyped; raise a member of the typed "
                "hierarchy (StateCodecError / CheckpointCorruptError / "
                "WorkerCrashError / PipelineStateError …)",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_broad(annotation: ast.expr) -> bool:
        names: list[ast.expr] = (
            list(annotation.elts)
            if isinstance(annotation, ast.Tuple)
            else [annotation]
        )
        return any(
            isinstance(name, ast.Name) and name.id in _BROAD_EXCEPTS
            for name in names
        )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(stmt, ast.Raise)
            for stmt in ast.walk(ast.Module(body=handler.body, type_ignores=[]))
        )


@register
class ExceptionTaxonomyRule(VisitorRule):
    code = "IPD003"
    name = "exception-taxonomy"
    invariant = (
        "Runtime and codec failure paths never swallow broad exceptions and "
        "never raise untyped ones: recovery dispatches on the typed "
        "hierarchy, so a swallowed or generic error breaks it silently."
    )
    visitor_class = _ExceptionTaxonomyVisitor

    def applies_to(self, source: SourceFile) -> bool:
        parts = Path(source.rel).parts
        return (
            "runtime" in parts
            or Path(source.rel).name in ("statecodec.py", "checkpoint.py")
        )


# ---------------------------------------------------------------------------
# IPD004 — codec layout changes require a version bump
# ---------------------------------------------------------------------------


@register
class CodecGuardRule(Rule):
    code = "IPD004"
    name = "codec-guard"
    invariant = (
        "The structural fingerprint of each codec module's encoded "
        "dataclass layouts and wire constants (statecodec.py, lpm.py, "
        "admission.py) is pinned to its CODEC_VERSION: changing a layout "
        "without bumping that version fails."
    )

    #: overridable pin file (tests point this at fixture pins)
    codec_pins: "Path | str" = DEFAULT_PIN_PATH

    def applies_to(self, source: SourceFile) -> bool:
        return Path(source.rel).name in ("statecodec.py", "lpm.py", "admission.py")

    def check(self, source: SourceFile) -> Iterator[Finding]:
        tree = source.tree
        assert tree is not None  # framework skips unparsable files
        stem = Path(source.rel).stem
        version = extract_codec_version(tree)
        if version is None:
            yield source.finding(
                self,
                tree,
                f"{stem}.py defines no CODEC_VERSION integer literal; the "
                "wire format must be explicitly versioned",
            )
            return
        try:
            pins = load_pins(self.codec_pins)
        except FileNotFoundError:
            yield source.finding(
                self,
                tree,
                f"codec fingerprint pin file {self.codec_pins} is missing; "
                "record it with --record-codec-pin",
            )
            return
        fingerprint = structural_fingerprint(tree)
        pinned = pin_for(pins, stem, version)
        if pinned is None:
            yield source.finding(
                self,
                tree,
                f"CODEC_VERSION {version} has no recorded fingerprint; after "
                "an intentional format change, record it with "
                "--record-codec-pin",
            )
        elif pinned != fingerprint:
            yield source.finding(
                self,
                tree,
                f"encoded layout changed but CODEC_VERSION is still {version}"
                f" (fingerprint {fingerprint[:12]}… != pinned {pinned[:12]}…);"
                " bump CODEC_VERSION and re-record the pin",
            )


# ---------------------------------------------------------------------------
# IPD005 — hot-path hygiene
# ---------------------------------------------------------------------------


class _HotPathVisitor(ContextVisitor):
    def _in_hot_loop(self) -> bool:
        return self.hot_depth > 0 and self.loop_depth > 0

    def _report_comprehension(self, node: ast.AST, kind: str) -> None:
        if self._in_hot_loop():
            self.report(
                node,
                f"{kind} allocates a fresh object per iteration inside a "
                "@hot_path loop; build once outside the loop or mutate in "
                "place",
            )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._report_comprehension(node, "list comprehension")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._report_comprehension(node, "set comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._report_comprehension(node, "dict comprehension")
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._report_comprehension(node, "generator expression")
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if self._in_hot_loop() and isinstance(node.op, ast.Add):
            if any(
                isinstance(side, ast.JoinedStr)
                or (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, str)
                )
                for side in (node.left, node.right)
            ):
                self.report(
                    node,
                    "string concatenation with + allocates inside a "
                    "@hot_path loop; precompute or use join outside the loop",
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # flag the `self.<x>.<y>` link of any self-rooted chain of depth
        # >= 2 inside a hot loop: `self` is loop-invariant, so the inner
        # lookup should be hoisted to a local before the loop
        if (
            self._in_hot_loop()
            and isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id in ("self", "cls")
        ):
            base = node.value.value.id
            chain = f"{base}.{node.value.attr}.{node.attr}"
            self.report(
                node,
                f"attribute chain {chain} re-resolved every iteration of a "
                f"@hot_path loop; hoist {base}.{node.value.attr} to a local "
                "before the loop",
            )
        self.generic_visit(node)


@register
class HotPathHygieneRule(VisitorRule):
    code = "IPD005"
    name = "hot-path-hygiene"
    invariant = (
        "Functions marked @hot_path (Algorithm-1 ingest and sweep) keep "
        "their loops allocation-clean: no comprehensions, no +-string "
        "builds, no re-resolved self.x.y attribute chains inside loops."
    )
    visitor_class = _HotPathVisitor


# ---------------------------------------------------------------------------
# IPD006 — fault seams default to off
# ---------------------------------------------------------------------------


class _FaultSeamVisitor(ContextVisitor):
    def enter_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef", hot: bool
    ) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        # defaults align right: the last len(defaults) positionals have one
        offset = len(positional) - len(args.defaults)
        for index, arg in enumerate(positional):
            if arg.arg != "fault_hook":
                continue
            default: Optional[ast.expr] = None
            if index >= offset:
                default = args.defaults[index - offset]
            self._check_default(node, default)
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == "fault_hook":
                self._check_default(node, kw_default)

    def _check_default(
        self, node: ast.AST, default: Optional[ast.expr]
    ) -> None:
        if default is None or not (
            isinstance(default, ast.Constant) and default.value is None
        ):
            self.report(
                node,
                "fault_hook parameters must default to None: the chaos seam "
                "is strictly opt-in, production call sites pay one identity "
                "check and nothing else",
            )


@register
class FaultSeamRule(VisitorRule):
    code = "IPD006"
    name = "fault-seam"
    invariant = (
        "Every fault_hook parameter defaults to None, keeping fault "
        "injection strictly opt-in on production paths."
    )
    visitor_class = _FaultSeamVisitor


# ---------------------------------------------------------------------------
# IPD007 — no pickle on hot paths or in the shard transport
# ---------------------------------------------------------------------------

#: object-serialization modules whose use the rule bans in scope;
#: per-record Python object (de)serialization is exactly the cost the
#: binary wire codec exists to remove
_SERIALIZER_MODULES = {"pickle", "marshal"}


class _NoPickleVisitor(ContextVisitor):
    """Flags pickle/marshal imports and calls inside the scoped regions.

    Two regions are in scope: the body of any ``@hot_path`` function
    (in any file), and — in the executor module — everything outside
    functions whose name mentions ``pickle``, which is the sanctioned
    legacy-transport branch.
    """

    def _in_executor_module(self) -> bool:
        return Path(self.source.rel).name == "executors.py"

    def _active(self) -> bool:
        if self.hot_depth > 0:
            return True
        if not self._in_executor_module():
            return False
        return not any(
            "pickle" in getattr(fn, "name", "")
            for fn in self.function_stack
        )

    def _flag(self, node: ast.AST, what: str) -> None:
        if self.hot_depth > 0:
            self.report(
                node,
                f"{what} inside a @hot_path function; hot paths move data "
                "through the binary wire codec, never object serialization",
            )
        else:
            self.report(
                node,
                f"{what} in the shard transport outside its legacy pickle "
                "branch; the shm data plane must stay pickle-free",
            )

    def visit_Import(self, node: ast.Import) -> None:
        if self._active():
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _SERIALIZER_MODULES:
                    self._flag(node, f"import of {root}")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._active() and node.module is not None:
            root = node.module.split(".")[0]
            if root in _SERIALIZER_MODULES:
                self._flag(node, f"import from {root}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self._active()
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in _SERIALIZER_MODULES
        ):
            self._flag(node, f"{func.value.id}.{func.attr}() call")
        self.generic_visit(node)


@register
class NoPickleHotPathRule(VisitorRule):
    code = "IPD007"
    name = "no-pickle-hot-path"
    invariant = (
        "Object serialization (pickle/marshal) never runs on a hot path "
        "or in the mp executor outside its legacy pickle-transport "
        "branch: the shm data plane moves flows through the binary wire "
        "codec only."
    )
    visitor_class = _NoPickleVisitor


# ---------------------------------------------------------------------------
# IPD008 — serving lookups never allocate containers
# ---------------------------------------------------------------------------

#: builtin container constructors whose call allocates on every lookup
_CONTAINER_BUILTINS = {"dict", "list", "set"}


class _LookupAllocVisitor(ContextVisitor):
    """Flags per-call container allocation in ``@hot_path`` lookups.

    Scope: the body of any ``@hot_path`` function whose name starts with
    ``lookup`` — the serving plane's per-request path, where a dict or
    list built per call is pure allocator pressure at hundreds of
    thousands of lookups per second.  Bulk variants that legitimately
    build a result list stay unmarked (``lookup_many``) or aggregate
    outside the marked function.
    """

    def _in_hot_lookup(self) -> bool:
        if self.hot_depth == 0:
            return False
        return any(
            str(getattr(fn, "name", "")).startswith("lookup")
            for fn in self.function_stack
        )

    def _flag(self, node: ast.AST, what: str) -> None:
        self.report(
            node,
            f"{what} allocates a container per call inside a @hot_path "
            "lookup function; return row indices or scalars, or move "
            "aggregation to an unmarked bulk wrapper",
        )

    def visit_Dict(self, node: ast.Dict) -> None:
        if self._in_hot_lookup():
            self._flag(node, "dict display")
        self.generic_visit(node)

    def visit_List(self, node: ast.List) -> None:
        if self._in_hot_lookup() and isinstance(node.ctx, ast.Load):
            self._flag(node, "list display")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        if self._in_hot_lookup():
            self._flag(node, "set display")
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        if self._in_hot_lookup():
            self._flag(node, "list comprehension")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        if self._in_hot_lookup():
            self._flag(node, "set comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        if self._in_hot_lookup():
            self._flag(node, "dict comprehension")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self._in_hot_lookup()
            and isinstance(func, ast.Name)
            and func.id in _CONTAINER_BUILTINS
        ):
            self._flag(node, f"{func.id}() call")
        self.generic_visit(node)


@register
class LookupAllocRule(VisitorRule):
    code = "IPD008"
    name = "lookup-alloc-free"
    invariant = (
        "@hot_path functions named lookup* never allocate dict/list/set "
        "containers per call: the serving plane's per-request path stays "
        "allocation-free, with aggregation in unmarked bulk wrappers."
    )
    visitor_class = _LookupAllocVisitor
