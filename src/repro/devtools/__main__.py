"""``python -m repro.devtools`` — alias for ``python -m repro.devtools.lint``."""

from .lint import main

if __name__ == "__main__":
    raise SystemExit(main())
