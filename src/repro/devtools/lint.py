"""Command-line entry point for the IPD invariant lint.

Usage::

    python -m repro.devtools.lint src/repro                # human output
    python -m repro.devtools.lint src/repro --format json  # machine output
    python -m repro.devtools.lint --list-rules             # what's enforced
    python -m repro.devtools.lint --record-codec-pin       # after a codec bump

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage / unreadable input.
Suppress a single finding with a trailing
``# ipd-lint: disable=<rule>`` comment on the flagged line.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .codecguard import DEFAULT_PIN_PATH, record_pin
from .framework import LintReport, build_rules, lint_paths

__all__ = ["main", "run_lint"]


def _default_codec_modules() -> list[Path]:
    """The in-tree codec modules, resolved relative to this package."""
    core = Path(__file__).resolve().parents[1] / "core"
    return [core / "statecodec.py", core / "lpm.py", core / "admission.py"]


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    codec_pins: "Path | str | None" = None,
) -> LintReport:
    """Programmatic form of the CLI (used by the test suite)."""
    config = {} if codec_pins is None else {"codec_pins": codec_pins}
    return lint_paths(paths, select=select, **config)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="AST lint enforcing the repro's implementation invariants",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/repro)"
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--codec-pins",
        metavar="PATH",
        default=None,
        help=f"codec fingerprint pin file (default: {DEFAULT_PIN_PATH})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and the invariant each enforces",
    )
    parser.add_argument(
        "--record-codec-pin",
        metavar="CODEC_MODULE",
        nargs="?",
        const="",
        default=None,
        help="record the current codec fingerprint(s) for their "
        "CODEC_VERSION (default: the in-tree statecodec.py, lpm.py and "
        "admission.py; optionally pass one explicit codec module path) "
        "and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in build_rules():
            print(f"{rule.code} {rule.name}")
            print(f"    {rule.invariant}")
        return 0

    if args.record_codec_pin is not None:
        sources = (
            [Path(args.record_codec_pin)]
            if args.record_codec_pin
            else _default_codec_modules()
        )
        pin_path = Path(args.codec_pins) if args.codec_pins else DEFAULT_PIN_PATH
        for source in sources:
            try:
                version, fingerprint = record_pin(source, pin_path)
            except (OSError, ValueError, SyntaxError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(
                f"recorded {source.stem} codec version {version} -> "
                f"{fingerprint}"
            )
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths to lint", file=sys.stderr)
        return 2

    select = (
        [code.strip() for code in args.select.split(",") if code.strip()]
        if args.select
        else None
    )
    try:
        report = run_lint(args.paths, select=select, codec_pins=args.codec_pins)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.format())
        summary = (
            f"{len(report.findings)} finding(s) in {report.files_scanned} "
            f"file(s); {report.suppressed} suppressed"
        )
        print(("FAIL: " if report.findings else "OK: ") + summary)
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
