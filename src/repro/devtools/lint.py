"""Command-line entry point for the IPD invariant lint.

Usage::

    python -m repro.devtools.lint src/repro                # human output
    python -m repro.devtools.lint src/repro --format json  # machine output
    python -m repro.devtools.lint src/repro --changed-only # git-scoped run
    python -m repro.devtools.lint --list-rules             # what's enforced
    python -m repro.devtools.lint --record-codec-pin       # after a codec bump

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage / unreadable input.
Suppress a single finding with a trailing
``# ipd-lint: disable=<rule>`` comment on the flagged line.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from .codecguard import DEFAULT_PIN_PATH, record_pin
from .framework import LintReport, build_rules, lint_paths

__all__ = ["main", "run_lint"]


def _default_codec_modules() -> list[Path]:
    """The in-tree codec modules, resolved relative to this package."""
    core = Path(__file__).resolve().parents[1] / "core"
    return [core / "statecodec.py", core / "lpm.py", core / "admission.py"]


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    codec_pins: "Path | str | None" = None,
    cache_dir: "Path | str | None" = None,
) -> LintReport:
    """Programmatic form of the CLI (used by the test suite)."""
    config = {} if codec_pins is None else {"codec_pins": codec_pins}
    return lint_paths(paths, select=select, cache_dir=cache_dir, **config)


def _git_lines(args: "list[str]", cwd: "Path | None" = None) -> list[str]:
    out = subprocess.run(
        ["git", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        check=True,
        timeout=30,
    )
    return [line.strip() for line in out.stdout.splitlines() if line.strip()]


def changed_files(paths: Sequence[str]) -> "Optional[list[str]]":
    """The ``.py`` files under *paths* that git says were touched.

    Touched = modified/added vs ``HEAD`` plus untracked (non-ignored)
    files.  Returns ``None`` when git is unavailable or the working
    directory is not a checkout — callers fall back to a full run.
    """
    try:
        top = _git_lines(["rev-parse", "--show-toplevel"])
        if not top:
            return None
        root = Path(top[0])
        names = set(_git_lines(["diff", "--name-only", "HEAD"], cwd=root))
        names.update(
            _git_lines(["ls-files", "--others", "--exclude-standard"], cwd=root)
        )
    except (OSError, subprocess.SubprocessError):
        return None
    scopes = [Path(p).resolve() for p in paths]
    selected: list[str] = []
    for name in sorted(names):
        candidate = (root / name).resolve()
        if candidate.suffix != ".py" or not candidate.is_file():
            continue
        if any(
            candidate == scope or scope in candidate.parents
            for scope in scopes
        ):
            selected.append(str(candidate))
    return selected


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="AST lint enforcing the repro's implementation invariants",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/repro)"
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--codec-pins",
        metavar="PATH",
        default=None,
        help=f"codec fingerprint pin file (default: {DEFAULT_PIN_PATH})",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only git-touched .py files under the given paths "
        "(falls back to a full run outside a git checkout)",
    )
    parser.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="also write the JSON report to PATH (e.g. a CI artifact)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache cross-module analysis results by file content hash "
        "in DIR so unchanged trees re-lint fast",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and the invariant each enforces",
    )
    parser.add_argument(
        "--record-codec-pin",
        metavar="CODEC_MODULE",
        nargs="?",
        const="",
        default=None,
        help="record the current codec fingerprint(s) for their "
        "CODEC_VERSION (default: the in-tree statecodec.py, lpm.py and "
        "admission.py; optionally pass one explicit codec module path) "
        "and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in build_rules():
            print(f"{rule.code} {rule.name}")
            print(f"    {rule.invariant}")
        return 0

    if args.record_codec_pin is not None:
        sources = (
            [Path(args.record_codec_pin)]
            if args.record_codec_pin
            else _default_codec_modules()
        )
        pin_path = Path(args.codec_pins) if args.codec_pins else DEFAULT_PIN_PATH
        for source in sources:
            try:
                version, fingerprint = record_pin(source, pin_path)
            except (OSError, ValueError, SyntaxError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            print(
                f"recorded {source.stem} codec version {version} -> "
                f"{fingerprint}"
            )
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths to lint", file=sys.stderr)
        return 2

    select = (
        [code.strip() for code in args.select.split(",") if code.strip()]
        if args.select
        else None
    )
    lint_targets: Sequence[str] = args.paths
    if args.changed_only:
        changed = changed_files(args.paths)
        if changed is None:
            print(
                "note: --changed-only needs a git checkout; "
                "running the full lint",
                file=sys.stderr,
            )
        else:
            lint_targets = changed
    try:
        if lint_targets:
            report = run_lint(
                lint_targets,
                select=select,
                codec_pins=args.codec_pins,
                cache_dir=args.cache_dir,
            )
        else:  # --changed-only with no touched files in scope
            report = LintReport()
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.output:
        out_path = Path(args.output)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.format())
        summary = (
            f"{len(report.findings)} finding(s) in {report.files_scanned} "
            f"file(s); {report.suppressed} suppressed"
        )
        print(("FAIL: " if report.findings else "OK: ") + summary)
    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
