"""Structural fingerprinting of the wire codecs (rule IPD004).

Two modules define versioned wire formats: the engine state codec
(:mod:`repro.core.statecodec`) and the compiled-LPM blob codec
(:mod:`repro.core.lpm`).  Every persisted checkpoint and compiled
snapshot artifact depends on decoders agreeing with the version stamped
in the blob.  The encoded layout is defined by things that live in
plain Python and are therefore easy to change *silently*:

* the field lists of the image dataclasses (``NodeImage``,
  ``TreeImage``, ``SubtreeImage``, ``EngineImage``) that the encoder
  walks, and
* the wire constants (``_MAGIC``, ``_KIND_*``, ``_TAG_*``, ``_FLAG_*``)
  that frame the byte stream.

This module reduces both to a canonical *structural fingerprint* —
a SHA-256 over the dataclass layouts and wire constants extracted from
the module's AST — and rule IPD004 pins that fingerprint to the
``CODEC_VERSION`` it was recorded at (``codec_fingerprints.json``).
Pins are keyed ``<module stem>:<version>`` (``statecodec:1``,
``lpm:1``); bare-integer keys written by earlier versions keep working
as a fallback for ``statecodec.py``.  Changing a layout without bumping
its version fails the lint; bumping the version requires recording the
new fingerprint, which makes the compatibility decision explicit in the
diff.

Regenerate the pins after an *intentional* format change with::

    python -m repro.devtools.lint --record-codec-pin
"""

from __future__ import annotations

import ast
import hashlib
import json
from pathlib import Path
from typing import Optional

__all__ = [
    "DEFAULT_PIN_PATH",
    "structural_fingerprint",
    "load_pins",
    "pin_for",
    "record_pin",
]

#: the committed version → fingerprint map
DEFAULT_PIN_PATH = Path(__file__).resolve().parent / "codec_fingerprints.json"

#: module-level constant name prefixes that define the wire framing
_WIRE_PREFIXES = ("_MAGIC", "_KIND_", "_TAG_", "_FLAG_")


def _is_dataclass_decorator(decorator: ast.expr) -> bool:
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    if isinstance(target, ast.Name):
        return target.id == "dataclass"
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return False


def _dataclass_layouts(tree: ast.Module) -> dict[str, list[list[str]]]:
    """Ordered ``(field, annotation)`` pairs for each module dataclass."""
    layouts: dict[str, list[list[str]]] = {}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        if not any(_is_dataclass_decorator(dec) for dec in node.decorator_list):
            continue
        fields: list[list[str]] = []
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                fields.append([stmt.target.id, ast.unparse(stmt.annotation)])
        layouts[node.name] = fields
    return layouts


def _wire_constants(tree: ast.Module) -> dict[str, str]:
    """Literal values of the framing constants, as stable reprs."""
    constants: dict[str, str] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        name = target.id
        if not name.startswith(_WIRE_PREFIXES):
            continue
        try:
            constants[name] = repr(ast.literal_eval(node.value))
        except ValueError:
            # derived (non-literal) constants don't frame the stream
            continue
    return constants


def extract_codec_version(tree: ast.Module) -> Optional[int]:
    """The module-level ``CODEC_VERSION`` integer literal, if present."""
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == "CODEC_VERSION":
                value = node.value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, int
                ):
                    return value.value
    return None


def structural_fingerprint(tree: ast.Module) -> str:
    """Canonical SHA-256 over the encoded-layout structure of *tree*."""
    payload = {
        "dataclasses": _dataclass_layouts(tree),
        "constants": _wire_constants(tree),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def load_pins(path: "Path | str" = DEFAULT_PIN_PATH) -> dict[str, str]:
    """The committed ``key -> fingerprint`` map, keys as stored.

    Keys are ``<module stem>:<version>`` (and, for archives written by
    earlier versions, bare ``<version>`` strings); resolve one with
    :func:`pin_for` rather than indexing directly.
    """
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    return {str(key): str(fingerprint) for key, fingerprint in raw.items()}


def pin_for(pins: dict[str, str], stem: str, version: int) -> Optional[str]:
    """The recorded fingerprint for codec module *stem* at *version*.

    Prefers the stem-qualified key; falls back to the legacy bare
    version key, which only ever referred to ``statecodec``.
    """
    fingerprint = pins.get(f"{stem}:{version}")
    if fingerprint is not None:
        return fingerprint
    if stem == "statecodec":
        return pins.get(str(version))
    return None


def record_pin(
    source_path: "Path | str",
    pin_path: "Path | str" = DEFAULT_PIN_PATH,
) -> tuple[int, str]:
    """Record the current fingerprint of *source_path* under its version.

    The pin is written under the stem-qualified key
    (``<stem>:<version>``); a legacy bare key for the same statecodec
    version is refreshed too so both spellings stay consistent.
    Returns ``(version, fingerprint)``.  Fails if the module carries no
    ``CODEC_VERSION`` literal.
    """
    source = Path(source_path)
    tree = ast.parse(source.read_text(encoding="utf-8"))
    version = extract_codec_version(tree)
    if version is None:
        raise ValueError(f"{source_path} defines no CODEC_VERSION literal")
    fingerprint = structural_fingerprint(tree)
    pin_file = Path(pin_path)
    pins: dict[str, str] = {}
    if pin_file.exists():
        pins = json.loads(pin_file.read_text(encoding="utf-8"))
    pins[f"{source.stem}:{version}"] = fingerprint
    if source.stem == "statecodec" and str(version) in pins:
        pins[str(version)] = fingerprint
    pin_file.write_text(
        json.dumps(pins, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return version, fingerprint
