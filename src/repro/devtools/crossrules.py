"""Cross-module dataflow rules (IPD009–IPD012).

These rules run over the :class:`~repro.devtools.project.ProjectGraph`
rather than one file at a time, because the invariants they enforce
live *between* definitions:

* **IPD009 codec-symmetry** — every write-side codec function in
  ``statecodec.py`` / ``lpm.py`` / ``wirecodec.py`` has a decode twin
  whose primitive read sequence mirrors the write sequence in order,
  field and struct width.  This is the static twin of the IPD004
  fingerprint pin: the pin catches a drifted wire layout after the
  fact, this rule points at the exact write/read pair that diverged.
* **IPD010 iteration-order-taint** — a value drawn from ``set`` /
  ``frozenset`` iteration must pass through an order-fixing step
  (``sorted`` & friends) before it reaches codec output, snapshot
  records or CSV/archive writes.  Python sets hash-order their
  elements, so un-sorted set iteration feeding serialized output is a
  byte-determinism bug even when every individual element is right.
* **IPD011 executor-state-discipline** — parent-side executor methods
  must not reach through a worker handle into worker-owned engine
  state (``self._worker.engines...``); engine state crosses the
  process/thread boundary only via the op/FIFO protocol (``handle``).
* **IPD012 lifecycle-typestate** — ``close()`` is exactly-once and no
  use may follow it for the runtime resource classes (``Sink``,
  ``ShmRing``, ``CheckpointStore``, ``Pipeline``, ``LivePipeline``);
  ``LivePipeline.start()`` is once as well.  Checked path-sensitively
  over the per-function CFG with a *must* analysis, so a close in one
  branch of a diamond does not flag a use after the join unless every
  path closed.

IPD010 and IPD012 build on :mod:`repro.devtools.dataflow` (per-function
CFGs plus a forward fixpoint); IPD009 and IPD011 are order/shape
comparisons over the symbol graph.  All four are *conservative*: they
track local variables and ``self`` attributes with known types and drop
facts whenever a value escapes through an alias, a call argument or a
container, trading recall for a near-zero false-positive rate (the
price: a close inside a loop body rejoins the loop header with the
must-facts intersected away, so a second-iteration double close is not
reported).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from .dataflow import ForwardAnalysis, build_cfg, header_exprs
from .framework import Finding, ProjectRule, register
from .project import (
    ClassInfo,
    ModuleInfo,
    ProjectGraph,
    _annotation_is_set,
)

__all__ = [
    "CodecSymmetryRule",
    "IterationOrderTaintRule",
    "ExecutorStateDisciplineRule",
    "LifecycleTypestateRule",
]


# ---------------------------------------------------------------------------
# shared naming conventions
# ---------------------------------------------------------------------------

_ENC_TOKENS = frozenset({"encode", "write", "pack"})
_DEC_TOKENS = frozenset({"decode", "read", "unpack"})
#: connective tokens that carry no pairing information
_NEUTRAL_TOKENS = frozenset(
    {"to", "from", "bytes", "with", "into", "span", "at", "impl"}
)


def _name_tokens(name: str) -> list[str]:
    return [tok for tok in name.strip("_").lower().split("_") if tok]


def _codec_role(name: str) -> Optional[str]:
    """``"enc"`` / ``"dec"`` / ``None`` from a function name.

    ``to_bytes``/``from_bytes`` count as encode/decode; a lone ``to`` or
    ``from`` (``tree_to_image``, ``build_lpm_from_records``) does not.
    """
    tokens = set(_name_tokens(name))
    if "bytes" in tokens:
        if "to" in tokens:
            return "enc"
        if "from" in tokens:
            return "dec"
    if tokens & _ENC_TOKENS:
        return "enc"
    if tokens & _DEC_TOKENS:
        return "dec"
    return None


def _pair_key(name: str, cls_name: Optional[str], module_stem: str) -> str:
    """The identity that matches an encoder with its decode twin.

    Role and connective tokens are stripped (``_write_node`` and
    ``_read_node`` both key as ``node``); a fully role-named method
    (``to_bytes``, ``encode_into``) keys on its class with any
    ``Encoder``/``Decoder`` suffix removed, so ``FlowBatchEncoder`` and
    ``FlowBatchDecoder`` land in one group.
    """
    drop = _ENC_TOKENS | _DEC_TOKENS | _NEUTRAL_TOKENS
    tokens = [tok for tok in _name_tokens(name) if tok not in drop]
    if tokens:
        return "-".join(tokens)
    if cls_name is not None:
        return "class:" + re.sub(r"(Encoder|Decoder)$", "", cls_name)
    return "module:" + module_stem


#: primitive wire-op methods of the in-tree writer/reader pairs; extended
#: per run with any method exposed by *both* a ``*Writer`` and a
#: ``*Reader`` class found in the scanned files
_DEFAULT_PRIMITIVES = frozenset(
    {"byte", "uvarint", "float", "string", "ingress", "prefix"}
)


def _discover_primitives(graph: ProjectGraph) -> frozenset[str]:
    writers: set[str] = set()
    readers: set[str] = set()
    for module in graph.modules:
        for cls in module.classes.values():
            lowered = cls.name.lstrip("_").lower()
            public = {m for m in cls.methods if not m.startswith("_")}
            if lowered.endswith("writer"):
                writers |= public
            elif lowered.endswith("reader"):
                readers |= public
    # ``raw`` moves untyped bytes and is handled separately (magic tags)
    return frozenset(_DEFAULT_PRIMITIVES | ((writers & readers) - {"raw"}))


def _functions_of(
    module: ModuleInfo,
) -> "Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, Optional[ClassInfo]]]":
    for func in module.functions.values():
        yield func, None
    for cls in module.classes.values():
        for method in cls.methods.values():
            yield method, cls


def _assigned_names(target: ast.expr) -> Iterator[str]:
    """Bare names bound by an assignment/loop/with target."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _assigned_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _assigned_names(target.value)


# ---------------------------------------------------------------------------
# IPD009 — codec symmetry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Op:
    """One abstract wire operation in an encode or decode sequence."""

    kind: str  # "prim" | "struct" | "pair" | "magic"
    detail: str  # primitive name / struct fmt / pair key / constant name
    name: Optional[str]  # field identifier when one is statically visible
    line: int

    def label(self) -> str:
        if self.kind == "prim":
            field = self.name if self.name is not None else "..."
            return f"{self.detail}({field})"
        if self.kind == "struct":
            return f"struct[{self.detail!r}]"
        if self.kind == "magic":
            return f"magic:{self.detail}"
        return f"pair:{self.detail}"


@dataclass
class _Branch:
    """A control-flow split in an op sequence.

    Each alternative is ``(items, exit)`` where *exit* is ``"open"``
    (falls through to what follows), ``"return"`` (completes the
    function's wire sequence here) or ``"error"`` (raises — error paths
    carry no wire bytes and are excluded from the comparison).
    """

    alternatives: "list[tuple[list[object], str]]"


#: one element of an extracted sequence: an op or a branch point
_Item = "_Op | _Branch"

#: path-explosion safety valve; codec functions stay far below this
_PATH_CAP = 256


def _has_ops(items: "Sequence[object]") -> bool:
    for item in items:
        if isinstance(item, _Op):
            return True
        if isinstance(item, _Branch):
            if any(_has_ops(alt) for alt, _exit in item.alternatives):
                return True
    return False


def _expand_paths(
    items: "Sequence[object]",
) -> "tuple[list[tuple[_Op, ...]], list[tuple[_Op, ...]]]":
    """All op paths through *items*: ``(completed, still-open)``.

    A path completes at a ``return`` alternative and dies at an
    ``error`` one; paths that fall off the end come back as *open* (the
    caller treats an open path at function end as completed).
    """
    open_paths: "list[tuple[_Op, ...]]" = [()]
    completed: "list[tuple[_Op, ...]]" = []
    for item in items:
        if not open_paths:
            break
        if isinstance(item, _Op):
            open_paths = [path + (item,) for path in open_paths]
            continue
        assert isinstance(item, _Branch)
        new_open: "list[tuple[_Op, ...]]" = []
        for alt_items, alt_exit in item.alternatives:
            sub_completed, sub_open = _expand_paths(alt_items)
            for prefix in open_paths:
                for sub in sub_completed:
                    completed.append(prefix + sub)
                if alt_exit == "open":
                    for sub in sub_open:
                        new_open.append(prefix + sub)
                elif alt_exit == "return":
                    for sub in sub_open:
                        completed.append(prefix + sub)
                # "error": open sub-paths die here
        open_paths = new_open[:_PATH_CAP]
        completed = completed[:_PATH_CAP]
    return completed, open_paths


@dataclass
class _CodecScope:
    module: ModuleInfo
    cls: Optional[ClassInfo]
    primitives: frozenset[str]


class _OpExtractor:
    """Extract every wire-op path of one codec function.

    Branches are kept as alternatives (an optional-field ``if`` on the
    encode side matches a conditional read on the decode side whatever
    the surface syntax), loop bodies are inlined zero-or-once, and
    ``raise`` statements / ``except`` handlers end their path — error
    paths carry no wire bytes.  The symmetry check then compares the
    *set* of paths on each side, so a divergence hiding in a short
    branch is found even when a longer sibling branch is clean.
    """

    def __init__(self, scope: _CodecScope) -> None:
        self.scope = scope

    def extract_paths(
        self, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> "list[tuple[_Op, ...]]":
        items, exit_kind = self._items(list(func.body))
        completed, open_paths = _expand_paths(items)
        paths = completed + (open_paths if exit_kind != "error" else [])
        # deduplicate while keeping a deterministic order
        unique: "dict[tuple[_Op, ...], None]" = {}
        for path in paths:
            unique.setdefault(path, None)
        return sorted(unique, key=lambda p: (len(p), [op.label() for op in p]))

    # -- statements ----------------------------------------------------------

    def _items(
        self, stmts: Sequence[ast.stmt]
    ) -> "tuple[list[object], str]":
        items: list[object] = []
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                items += self._expr(stmt.test)
                then_items, then_exit = self._items(stmt.body)
                else_items, else_exit = self._items(stmt.orelse)
                if (
                    then_exit == "open"
                    and else_exit == "open"
                    and not _has_ops(then_items)
                    and not _has_ops(else_items)
                ):
                    continue  # pure control flow, no wire effect
                items.append(
                    _Branch([(then_items, then_exit), (else_items, else_exit)])
                )
                if then_exit != "open" and else_exit != "open":
                    ended = (
                        "return"
                        if "return" in (then_exit, else_exit)
                        else "error"
                    )
                    return items, ended
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                if isinstance(stmt, ast.While):
                    items += self._expr(stmt.test)
                else:
                    items += self._expr(stmt.iter)
                body_items, body_exit = self._items(stmt.body)
                if _has_ops(body_items) or body_exit != "open":
                    # inline zero-or-once: both sides of a count-prefixed
                    # loop agree whichever alternative is taken
                    items.append(
                        _Branch([(body_items, body_exit), ([], "open")])
                    )
                orelse_items, _orelse_exit = self._items(stmt.orelse)
                items += orelse_items
            elif isinstance(stmt, ast.Try):
                body_items, body_exit = self._items(stmt.body)
                items += body_items  # handlers are error paths: skipped
                orelse_items, orelse_exit = self._items(stmt.orelse)
                items += orelse_items
                final_items, final_exit = self._items(stmt.finalbody)
                items += final_items
                for ended in (body_exit, orelse_exit, final_exit):
                    if ended != "open":
                        return items, ended
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    items += self._expr(item.context_expr)
                body_items, body_exit = self._items(stmt.body)
                items += body_items
                if body_exit != "open":
                    return items, body_exit
            elif isinstance(stmt, ast.Return):
                items += self._expr(stmt.value)
                return items, "return"
            elif isinstance(stmt, ast.Raise):
                return items, "error"
            elif isinstance(stmt, ast.Assign):
                items += self._assign(stmt)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                items += self._expr(stmt.value)
            elif isinstance(stmt, ast.Expr):
                items += self._expr(stmt.value)
            # nested defs/classes, imports, pass, break/continue:
            # no wire effect at this statement
        return items, "open"

    def _assign(self, stmt: ast.Assign) -> "list[object]":
        items = self._expr(stmt.value)
        # name a decode read after its whole-statement target:
        # ``kind = reader.byte()`` reads the field ``kind``
        if (
            len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and items
            and isinstance(items[-1], _Op)
            and items[-1].kind == "prim"
            and items[-1].name is None
        ):
            last = items[-1]
            named = self._clean_field(stmt.targets[0].id)
            items[-1] = _Op(last.kind, last.detail, named, last.line)
        return items

    # -- expressions ---------------------------------------------------------

    def _per_element(self, body: "list[object]") -> "list[object]":
        """Zero-or-once wrap for comprehension bodies.

        A comprehension may iterate zero times, so its element ops get
        the same skip alternative a ``for`` body does — otherwise a
        write-side loop paired with a read-side comprehension would
        disagree about the empty-sequence path.
        """
        if not _has_ops(body):
            return body
        return [_Branch([(body, "open"), ([], "open")])]

    def _expr(self, expr: Optional[ast.expr]) -> "list[object]":
        if expr is None:
            return []
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Lambda):
            return []  # not evaluated here
        if isinstance(expr, ast.IfExp):
            items = self._expr(expr.test)
            body_items = self._expr(expr.body)
            else_items = self._expr(expr.orelse)
            if _has_ops(body_items) or _has_ops(else_items):
                items.append(
                    _Branch([(body_items, "open"), (else_items, "open")])
                )
            return items
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            items = []
            for gen in expr.generators:
                items += self._expr(gen.iter)
                for cond in gen.ifs:
                    items += self._expr(cond)
            return items + self._per_element(self._expr(expr.elt))
        if isinstance(expr, ast.DictComp):
            items = []
            for gen in expr.generators:
                items += self._expr(gen.iter)
                for cond in gen.ifs:
                    items += self._expr(cond)
            body = self._expr(expr.key) + self._expr(expr.value)
            return items + self._per_element(body)
        if isinstance(expr, ast.Compare):
            items = self._expr(expr.left)
            for comparator in expr.comparators:
                items += self._expr(comparator)
            magic = self._magic_operand(expr)
            if magic is not None:
                items.append(magic)
            return items
        if isinstance(expr, ast.BoolOp):
            items = []
            for value in expr.values:
                items += self._expr(value)
            return items
        items = []
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                items += self._expr(child)
        return items

    def _call(self, call: ast.Call) -> "list[object]":
        items: list[object] = []
        if isinstance(call.func, ast.Attribute):
            items += self._expr(call.func.value)
        for arg in call.args:
            items += self._expr(arg)
        for keyword in call.keywords:
            items += self._expr(keyword.value)
        op = self._classify(call)
        if op is not None:
            items.append(op)
        return items

    def _classify(self, call: ast.Call) -> Optional[_Op]:
        func = call.func
        scope = self.scope
        if isinstance(func, ast.Attribute):
            attr = func.attr
            if attr in scope.primitives:
                name = (
                    self._field_name(call.args[0]) if call.args else None
                )
                return _Op("prim", attr, name, call.lineno)
            if attr in ("pack", "pack_into", "unpack", "unpack_from"):
                fmt = self._struct_fmt(func.value, call)
                if fmt is not None:
                    return _Op("struct", fmt, None, call.lineno)
            if attr == "raw" and len(call.args) == 1:
                magic = self._bytes_constant(call.args[0])
                if magic is not None:
                    return _Op("magic", magic, None, call.lineno)
                return None
            role = _codec_role(attr)
            if role is not None and isinstance(func.value, ast.Name):
                receiver = func.value.id
                if (
                    receiver in ("self", "cls")
                    and scope.cls is not None
                    and attr in scope.cls.methods
                ):
                    key = _pair_key(attr, scope.cls.name, scope.module.stem)
                    return _Op("pair", key, None, call.lineno)
                if receiver in scope.module.module_aliases:
                    key = _pair_key(attr, None, scope.module.stem)
                    return _Op("pair", key, None, call.lineno)
            return None
        if isinstance(func, ast.Name):
            role = _codec_role(func.id)
            if role is not None and (
                func.id in scope.module.functions
                or func.id in scope.module.symbol_aliases
            ):
                key = _pair_key(func.id, None, scope.module.stem)
                return _Op("pair", key, None, call.lineno)
        return None

    # -- leaf helpers --------------------------------------------------------

    def _clean_field(self, raw: str) -> Optional[str]:
        """A comparable field identifier, or ``None`` for non-fields."""
        if raw in self.scope.module.constants or raw.strip("_").isupper():
            return None  # module constant / tag byte, not a record field
        cleaned = raw.lstrip("_")
        return cleaned if cleaned else None

    def _field_name(self, arg: ast.expr) -> Optional[str]:
        if isinstance(arg, ast.Attribute):
            name = arg.attr
            if name.strip("_").isupper():
                return None
            stripped = name.lstrip("_")
            return stripped if stripped else None
        if isinstance(arg, ast.Name):
            return self._clean_field(arg.id)
        return None

    def _bytes_constant(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            const = self.scope.module.constants.get(expr.id)
            if isinstance(const, ast.Constant) and isinstance(
                const.value, bytes
            ):
                return expr.id.lstrip("_")
        return None

    def _magic_operand(self, compare: ast.Compare) -> Optional[_Op]:
        for operand in [compare.left, *compare.comparators]:
            magic = self._bytes_constant(operand)
            if magic is not None:
                return _Op("magic", magic, None, compare.lineno)
        return None

    def _struct_fmt(
        self, receiver: ast.expr, call: ast.Call
    ) -> Optional[str]:
        """The struct format behind a pack/unpack call, if resolvable.

        Handles ``struct.pack(fmt, ...)`` (also under an import alias)
        and module-level ``_CONST = struct.Struct(fmt)`` receivers.
        Returns ``"?"`` when the receiver is struct-shaped but the
        format itself is not a literal, so both sides still count the
        op.
        """
        if not isinstance(receiver, ast.Name):
            return None
        module = self.scope.module
        if (
            receiver.id == "struct"
            or module.module_aliases.get(receiver.id) == "struct"
        ):
            if call.args:
                return self._fmt_literal(call.args[0]) or "?"
            return "?"
        const = module.constants.get(receiver.id)
        if isinstance(const, ast.Call):
            ctor = const.func
            is_struct_ctor = (
                isinstance(ctor, ast.Attribute) and ctor.attr == "Struct"
            ) or (isinstance(ctor, ast.Name) and ctor.id == "Struct")
            if is_struct_ctor and const.args:
                return self._fmt_literal(const.args[0]) or "?"
        return None

    @staticmethod
    def _fmt_literal(expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        if isinstance(expr, ast.JoinedStr):
            parts = []
            for value in expr.values:
                if isinstance(value, ast.Constant):
                    parts.append(str(value.value))
                else:
                    parts.append("{}")  # width placeholder, e.g. f"<{n}I"
            return "".join(parts)
        return None


def _sig(path: "tuple[_Op, ...]") -> "tuple[tuple[str, str], ...]":
    return tuple((op.kind, op.detail) for op in path)


@dataclass
class _CodecSide:
    """One function's extracted paths for one role of a codec pair."""

    func_name: str
    lineno: int
    paths: "list[tuple[_Op, ...]]"

    @property
    def depth(self) -> int:
        return max((len(path) for path in self.paths), default=0)

    @property
    def moves_bytes(self) -> bool:
        return self.depth > 0

    def signatures(self) -> "dict[tuple[tuple[str, str], ...], tuple[_Op, ...]]":
        table: "dict[tuple[tuple[str, str], ...], tuple[_Op, ...]]" = {}
        for path in self.paths:
            table.setdefault(_sig(path), path)
        return table

    def field_names(self) -> set[str]:
        return {
            op.name
            for path in self.paths
            for op in path
            if op.name is not None
        }


@register
class CodecSymmetryRule(ProjectRule):
    """IPD009: encode/decode twins must mirror each other's wire ops."""

    code = "IPD009"
    name = "codec-symmetry"
    invariant = (
        "every write-side codec function in the codec modules has a "
        "decode twin whose primitive read sequence mirrors the writes "
        "in order, field and struct width on every wire path (static "
        "twin of the IPD004 fingerprint pin)"
    )
    #: module stems the pairing applies to (the wire-format modules)
    codec_module_stems: "tuple[str, ...]" = ("statecodec", "lpm", "wirecodec")

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        primitives = _discover_primitives(graph)
        for module in graph.modules_with_stem(self.codec_module_stems):
            yield from self._check_module(module, primitives)

    def _check_module(
        self, module: ModuleInfo, primitives: frozenset[str]
    ) -> Iterator[Finding]:
        groups: "dict[str, dict[str, list[_CodecSide]]]" = {}
        for func, cls in _functions_of(module):
            role = _codec_role(func.name)
            if role is None:
                continue
            scope = _CodecScope(module=module, cls=cls, primitives=primitives)
            paths = _OpExtractor(scope).extract_paths(func)
            key = _pair_key(
                func.name, cls.name if cls is not None else None, module.stem
            )
            group = groups.setdefault(key, {"enc": [], "dec": []})
            group[role].append(_CodecSide(func.name, func.lineno, paths))
        for key in sorted(groups):
            encoders = groups[key]["enc"]
            decoders = groups[key]["dec"]
            if encoders and decoders:
                # compare the canonical (deepest) side of each role:
                # wrappers delegate via pair ops and stay shallow
                encoder = max(encoders, key=lambda side: side.depth)
                decoder = max(decoders, key=lambda side: side.depth)
                yield from self._compare(module, key, encoder, decoder)
                continue
            missing = "decode" if encoders else "encode"
            for side in encoders or decoders:
                if side.moves_bytes:
                    yield Finding(
                        rule=self.code,
                        path=module.source.display_path,
                        line=side.lineno,
                        col=1,
                        message=(
                            f"codec function {side.func_name} moves wire "
                            f"bytes but has no {missing}-side counterpart "
                            f"(pair key {key!r}) in {module.stem}.py"
                        ),
                    )

    def _compare(
        self,
        module: ModuleInfo,
        key: str,
        encoder: _CodecSide,
        decoder: _CodecSide,
    ) -> Iterator[Finding]:
        """One finding per pair, at the first divergence found.

        Structural check first: every encode path's op signature must
        appear among the decode paths and vice versa.  Then a
        field-name drift check on the matched paths — a one-off rename
        is tolerated, a *swap* (the twin field occurs elsewhere on the
        other side) is not.
        """
        pair = f"{encoder.func_name}/{decoder.func_name}"
        enc_sigs = encoder.signatures()
        dec_sigs = decoder.signatures()
        for sigs, against, side_name, other_name in (
            (enc_sigs, dec_sigs, "encode", "decode"),
            (dec_sigs, enc_sigs, "decode", "encode"),
        ):
            for sig in sorted(sigs):
                if sig in against:
                    continue
                path = sigs[sig]
                yield self._divergence_finding(
                    module, pair, key, side_name, other_name, path, against
                )
                return
        enc_fields = encoder.field_names()
        dec_fields = decoder.field_names()
        for sig in sorted(enc_sigs):
            enc_path = enc_sigs[sig]
            dec_path = dec_sigs[sig]
            for index, (enc, dec) in enumerate(
                zip(enc_path, dec_path), start=1
            ):
                if (
                    enc.kind == "prim"
                    and enc.name is not None
                    and dec.name is not None
                    and enc.name != dec.name
                    and (enc.name in dec_fields or dec.name in enc_fields)
                ):
                    yield Finding(
                        rule=self.code,
                        path=module.source.display_path,
                        line=enc.line,
                        col=1,
                        message=(
                            f"codec pair {pair} ({key}): field order "
                            f"drift at wire op {index} — encode writes "
                            f"{enc.detail}({enc.name}) where decode reads "
                            f"{dec.detail}({dec.name}), and the twin "
                            "field appears elsewhere in the sequence"
                        ),
                    )
                    return

    def _divergence_finding(
        self,
        module: ModuleInfo,
        pair: str,
        key: str,
        side_name: str,
        other_name: str,
        path: "tuple[_Op, ...]",
        against: "dict[tuple[tuple[str, str], ...], tuple[_Op, ...]]",
    ) -> Finding:
        sig = _sig(path)
        best: "Optional[tuple[_Op, ...]]" = None
        best_common = -1
        for other_sig, other_path in sorted(against.items()):
            common = 0
            for left, right in zip(sig, other_sig):
                if left != right:
                    break
                common += 1
            if common > best_common or (
                common == best_common
                and best is not None
                and abs(len(other_sig) - len(sig)) < abs(len(best) - len(sig))
            ):
                best_common = common
                best = other_path
        at = min(best_common, len(path) - 1) if path else 0
        anchor = path[at] if path else None
        line = anchor.line if anchor is not None else 1
        if best is None:
            detail = f"{other_name} side has no wire paths at all"
        elif best_common >= len(path):
            extra = best[len(path)]
            detail = (
                f"the closest {other_name} path continues with "
                f"{extra.label()} after op {len(path)}"
            )
        elif best_common < len(best):
            detail = (
                f"op {best_common + 1} is {path[best_common].label()} here "
                f"but {best[best_common].label()} on the closest "
                f"{other_name} path"
            )
        else:
            detail = (
                f"the closest {other_name} path ends after op "
                f"{best_common} before {path[best_common].label()}"
            )
        return Finding(
            rule=self.code,
            path=module.source.display_path,
            line=line,
            col=1,
            message=(
                f"codec pair {pair} ({key}): a {side_name} wire path has "
                f"no mirror on the {other_name} side — {detail}"
            ),
        )


# ---------------------------------------------------------------------------
# IPD010 — iteration-order taint
# ---------------------------------------------------------------------------

#: builtins whose result no longer depends on iteration order
_ORDER_SANITIZERS = frozenset({"sorted", "min", "max", "sum", "len", "any", "all"})
_SET_FACTORIES = frozenset({"set", "frozenset"})
#: set methods returning another (still unordered) set
_SET_METHODS = frozenset(
    {"copy", "union", "intersection", "difference", "symmetric_difference"}
)
#: attribute-call sinks beyond the writer primitives and enc-role names
_SINK_ATTRS = frozenset({"writerow", "writerows", "pack", "pack_into"})

_TaintState = "dict[str, frozenset[str]]"
_SET = frozenset({"set"})
_TAINT = frozenset({"taint"})


class _TaintAnalysis(ForwardAnalysis["dict[str, frozenset[str]]"]):
    """May-analysis: which locals hold a set / an order-tainted value."""

    def __init__(
        self,
        set_attrs: frozenset[str],
        set_callables: frozenset[str],
        set_params: frozenset[str],
    ) -> None:
        self.set_attrs = set_attrs
        self.set_callables = set_callables
        self.set_params = set_params

    def initial_state(self) -> "dict[str, frozenset[str]]":
        return {param: _SET for param in self.set_params}

    def join(
        self,
        left: "dict[str, frozenset[str]]",
        right: "dict[str, frozenset[str]]",
    ) -> "dict[str, frozenset[str]]":
        merged = dict(left)
        for var, facts in right.items():
            merged[var] = merged.get(var, frozenset()) | facts
        return merged

    def transfer(
        self, state: "dict[str, frozenset[str]]", stmt: ast.stmt
    ) -> "dict[str, frozenset[str]]":
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            return self._bind(
                state, stmt.targets[0].id, self.expr_facts(state, stmt.value)
            )
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            facts = (
                self.expr_facts(state, stmt.value)
                if stmt.value is not None
                else frozenset()
            )
            if _annotation_is_set(stmt.annotation):
                facts |= _SET
            return self._bind(state, stmt.target.id, facts)
        if isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.target, ast.Name
        ):
            facts = state.get(stmt.target.id, frozenset()) | self.expr_facts(
                state, stmt.value
            )
            return self._bind(state, stmt.target.id, facts)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_facts = self.expr_facts(state, stmt.iter)
            element = _TAINT if iter_facts & (_SET | _TAINT) else frozenset()
            new = dict(state)
            for name in _assigned_names(stmt.target):
                if element:
                    new[name] = element
                else:
                    new.pop(name, None)
            return new
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            new = dict(state)
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name in _assigned_names(item.optional_vars):
                        new.pop(name, None)
            return new
        return state

    @staticmethod
    def _bind(
        state: "dict[str, frozenset[str]]", var: str, facts: frozenset[str]
    ) -> "dict[str, frozenset[str]]":
        new = dict(state)
        if facts:
            new[var] = facts
        else:
            new.pop(var, None)
        return new

    # -- abstract evaluation -------------------------------------------------

    def expr_facts(
        self, state: "dict[str, frozenset[str]]", expr: Optional[ast.expr]
    ) -> frozenset[str]:
        if expr is None or isinstance(expr, (ast.Constant, ast.Lambda)):
            return frozenset()
        if isinstance(expr, ast.Name):
            return state.get(expr.id, frozenset())
        if isinstance(expr, ast.Attribute):
            facts = self.expr_facts(state, expr.value) & _TAINT
            if expr.attr in self.set_attrs:
                facts |= _SET
            return facts
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return _SET
        if isinstance(expr, ast.Call):
            return self._call_facts(state, expr)
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            facts: frozenset[str] = frozenset()
            for gen in expr.generators:
                if self.expr_facts(state, gen.iter) & (_SET | _TAINT):
                    facts |= _TAINT
            if isinstance(expr, ast.DictComp):
                inner = self.expr_facts(state, expr.key) | self.expr_facts(
                    state, expr.value
                )
            else:
                inner = self.expr_facts(state, expr.elt)
            return facts | (inner & _TAINT)
        if isinstance(expr, ast.BinOp):
            return self.expr_facts(state, expr.left) | self.expr_facts(
                state, expr.right
            )
        if isinstance(expr, ast.BoolOp):
            out: frozenset[str] = frozenset()
            for value in expr.values:
                out |= self.expr_facts(state, value)
            return out
        if isinstance(expr, ast.IfExp):
            return (self.expr_facts(state, expr.test) & _TAINT) | (
                self.expr_facts(state, expr.body)
                | self.expr_facts(state, expr.orelse)
            )
        if isinstance(expr, (ast.Tuple, ast.List)):
            out = frozenset()
            for elt in expr.elts:
                out |= self.expr_facts(state, elt)
            return out & _TAINT
        if isinstance(expr, ast.Subscript):
            # an element of a tainted container is tainted; sets are
            # not subscriptable so the set fact does not pass through
            return self.expr_facts(state, expr.value) & _TAINT
        if isinstance(expr, ast.Starred):
            return self.expr_facts(state, expr.value)
        if isinstance(expr, ast.Compare):
            return frozenset()  # booleans carry no order
        if isinstance(expr, ast.UnaryOp):
            return self.expr_facts(state, expr.operand) & _TAINT
        out = frozenset()
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                out |= self.expr_facts(state, child) & _TAINT
        return out

    def _call_facts(
        self, state: "dict[str, frozenset[str]]", call: ast.Call
    ) -> frozenset[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in _ORDER_SANITIZERS:
                return frozenset()
            if func.id in _SET_FACTORIES:
                return _SET
            if func.id in self.set_callables:
                return _SET
        if isinstance(func, ast.Attribute):
            if func.attr in self.set_callables:
                return _SET
            receiver = self.expr_facts(state, func.value)
            if _SET <= receiver and func.attr in _SET_METHODS:
                return _SET
        # generic call: materializing or transforming an unordered value
        # yields an order-dependent result (``list(s)``, ``",".join(s)``)
        collected: frozenset[str] = frozenset()
        if isinstance(func, ast.Attribute):
            collected |= self.expr_facts(state, func.value)
        for arg in call.args:
            collected |= self.expr_facts(state, arg)
        for keyword in call.keywords:
            collected |= self.expr_facts(state, keyword.value)
        if collected & (_SET | _TAINT):
            return _TAINT
        return frozenset()


@register
class IterationOrderTaintRule(ProjectRule):
    """IPD010: unordered iteration must not feed serialized output."""

    code = "IPD010"
    name = "iteration-order-taint"
    invariant = (
        "a value drawn from set/frozenset iteration passes through an "
        "order-fixing step (sorted() or equivalent) before it reaches "
        "codec output, snapshot records, or CSV/archive writes"
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        set_attrs = frozenset(graph.set_attr_names())
        set_callables = frozenset(graph.set_returning_callables())
        primitives = _discover_primitives(graph)
        for module in graph.modules:
            for func, _cls in _functions_of(module):
                yield from self._check_function(
                    module, func, set_attrs, set_callables, primitives
                )

    def _check_function(
        self,
        module: ModuleInfo,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        set_attrs: frozenset[str],
        set_callables: frozenset[str],
        primitives: frozenset[str],
    ) -> Iterator[Finding]:
        args = func.args
        all_args = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
        set_params = frozenset(
            arg.arg for arg in all_args if _annotation_is_set(arg.annotation)
        )
        analysis = _TaintAnalysis(set_attrs, set_callables, set_params)
        cfg = build_cfg(func)
        states = analysis.entry_states(cfg)
        flagged: set[int] = set()
        for state, stmt in analysis.replay(cfg, states):
            for expr in header_exprs(stmt):
                for call in self._sink_calls(expr, primitives):
                    if call.lineno in flagged:
                        continue
                    for arg in [
                        *call.args,
                        *[keyword.value for keyword in call.keywords],
                    ]:
                        facts = analysis.expr_facts(state, arg)
                        if facts & (_TAINT | _SET):
                            flagged.add(call.lineno)
                            yield Finding(
                                rule=self.code,
                                path=module.source.display_path,
                                line=call.lineno,
                                col=call.col_offset + 1,
                                message=(
                                    "iteration-order-dependent value "
                                    f"reaches serialized output via "
                                    f"{self._call_label(call)}(); fix the "
                                    "order (sorted(...)) before it is "
                                    "written"
                                ),
                            )
                            break

    @staticmethod
    def _sink_calls(
        expr: ast.expr, primitives: frozenset[str]
    ) -> Iterator[ast.Call]:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                if (
                    func.attr in _SINK_ATTRS
                    or func.attr in primitives
                    or _codec_role(func.attr) == "enc"
                ):
                    yield node
            elif isinstance(func, ast.Name):
                if _codec_role(func.id) == "enc":
                    yield node

    @staticmethod
    def _call_label(call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return "<call>"


# ---------------------------------------------------------------------------
# IPD011 — executor state discipline
# ---------------------------------------------------------------------------


@register
class ExecutorStateDisciplineRule(ProjectRule):
    """IPD011: parent-side code talks to workers only via the protocol."""

    code = "IPD011"
    name = "executor-state-discipline"
    invariant = (
        "executor methods never reach through a worker handle into "
        "worker-owned engine state; shard state crosses the boundary "
        "only via the op/FIFO protocol methods"
    )
    #: module stems that host the executor data plane
    executor_module_stems: "tuple[str, ...]" = ("executors",)
    #: class names whose instances are worker-side state owners
    worker_class_names: "tuple[str, ...]" = ("ShardWorker",)
    #: the sanctioned protocol surface on a worker handle
    worker_protocol: "tuple[str, ...]" = ("handle",)

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for module in graph.modules_with_stem(self.executor_module_stems):
            for cls in module.classes.values():
                if not cls.name.endswith("Executor"):
                    continue
                handles = self._worker_handles(cls, module, graph)
                if not handles:
                    continue
                yield from self._check_class(module, cls, handles)

    def _worker_handles(
        self, cls: ClassInfo, module: ModuleInfo, graph: ProjectGraph
    ) -> "dict[str, str]":
        """``self`` attributes of *cls* holding a worker instance."""
        handles: dict[str, str] = {}
        init = cls.methods.get("__init__")
        if init is None:
            return handles
        wanted = set(self.worker_class_names)
        for node in ast.walk(init):
            if not (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
            ):
                continue
            ctor = node.value.func
            ctor_name: Optional[str] = None
            if isinstance(ctor, ast.Name):
                ctor_name = ctor.id
            elif isinstance(ctor, ast.Attribute):
                ctor_name = ctor.attr
            if ctor_name is None:
                continue
            resolved = graph.resolve_class(module, ctor_name)
            names = (
                graph.ancestry(resolved)
                if resolved is not None
                else {ctor_name}
            )
            if not (names & wanted):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    handles[target.attr] = ctor_name
        return handles

    def _check_class(
        self, module: ModuleInfo, cls: ClassInfo, handles: "dict[str, str]"
    ) -> Iterator[Finding]:
        protocol = set(self.worker_protocol)
        for method_name, method in cls.methods.items():
            for node in ast.walk(method):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Attribute)
                ):
                    continue
                inner = node.value
                if not (
                    isinstance(inner.value, ast.Name)
                    and inner.value.id == "self"
                    and inner.attr in handles
                ):
                    continue
                if node.attr in protocol:
                    continue
                yield Finding(
                    rule=self.code,
                    path=module.source.display_path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=(
                        f"{cls.name}.{method_name} reaches into worker "
                        f"state self.{inner.attr}.{node.attr} "
                        f"({handles[inner.attr]}) from the parent side; "
                        "shard state crosses the executor boundary only "
                        f"via the protocol ({', '.join(sorted(protocol))})"
                    ),
                )


# ---------------------------------------------------------------------------
# IPD012 — lifecycle typestate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Lifecycle:
    """Once-only and closed-forbidden method sets of one resource class."""

    once: frozenset[str]
    use: frozenset[str]
    closers: frozenset[str]


_LIFECYCLE_PROTOCOLS: "dict[str, _Lifecycle]" = {
    "Sink": _Lifecycle(
        once=frozenset({"close"}),
        use=frozenset({"emit"}),
        closers=frozenset({"close"}),
    ),
    "ShmRing": _Lifecycle(
        once=frozenset({"close", "unlink"}),
        use=frozenset(
            {
                "reserve",
                "commit",
                "abort",
                "send",
                "recv",
                "try_recv",
                "force_stall",
            }
        ),
        closers=frozenset({"close"}),
    ),
    "CheckpointStore": _Lifecycle(
        once=frozenset({"close"}),
        use=frozenset(
            {
                "save",
                "load",
                "latest",
                "latest_valid",
                "restore_engine",
                "list",
            }
        ),
        closers=frozenset({"close"}),
    ),
    "Pipeline": _Lifecycle(
        once=frozenset({"close"}),
        use=frozenset({"run", "run_incremental"}),
        closers=frozenset({"close"}),
    ),
    "LivePipeline": _Lifecycle(
        once=frozenset({"start", "close"}),
        use=frozenset({"submit", "submit_batch", "start", "stop"}),
        closers=frozenset({"close"}),
    ),
}

_LifeState = "dict[str, tuple[str, frozenset[str]]]"


def _escaping_names(stmt: ast.stmt) -> set[str]:
    """Variables whose value leaves local control at this statement."""
    names: set[str] = set()
    for expr in header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        names.add(arg.id)
                    elif isinstance(arg, ast.Starred) and isinstance(
                        arg.value, ast.Name
                    ):
                        names.add(arg.value.id)
                for keyword in node.keywords:
                    if isinstance(keyword.value, ast.Name):
                        names.add(keyword.value.id)
            elif isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
                value = node.value
                if isinstance(value, ast.Name):
                    names.add(value.id)
    if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Name):
        names.add(stmt.value.id)
    if isinstance(stmt, ast.Assign):
        if isinstance(stmt.value, ast.Name):
            names.add(stmt.value.id)  # aliasing: both names now point at it
        elif isinstance(stmt.value, (ast.Tuple, ast.List)):
            for elt in stmt.value.elts:
                if isinstance(elt, ast.Name):
                    names.add(elt.id)
    return names


class _LifecycleAnalysis(
    ForwardAnalysis["dict[str, tuple[str, frozenset[str]]]"]
):
    """Must-analysis: locals definitely holding a live resource, with the
    set of once-methods already called on *every* path."""

    def __init__(self, resolve_protocol: "object") -> None:
        # a callable (ctor expr) -> Optional[str]; kept untyped at the
        # attribute to avoid a self-referential callback protocol
        self._resolve_protocol = resolve_protocol

    def ctor_protocol(self, expr: ast.expr) -> Optional[str]:
        resolver = self._resolve_protocol
        result = resolver(expr)  # type: ignore[operator]
        return result if isinstance(result, str) or result is None else None

    def initial_state(self) -> "dict[str, tuple[str, frozenset[str]]]":
        return {}

    def join(
        self,
        left: "dict[str, tuple[str, frozenset[str]]]",
        right: "dict[str, tuple[str, frozenset[str]]]",
    ) -> "dict[str, tuple[str, frozenset[str]]]":
        merged: dict[str, tuple[str, frozenset[str]]] = {}
        for var, (proto, called) in left.items():
            other = right.get(var)
            if other is not None and other[0] == proto:
                merged[var] = (proto, called & other[1])
        return merged

    def transfer(
        self,
        state: "dict[str, tuple[str, frozenset[str]]]",
        stmt: ast.stmt,
    ) -> "dict[str, tuple[str, frozenset[str]]]":
        new = dict(state)
        for name in _escaping_names(stmt):
            new.pop(name, None)
        for var, method in _receiver_calls(stmt, state):
            entry = new.get(var)
            if entry is None:
                continue
            proto, called = entry
            spec = _LIFECYCLE_PROTOCOLS[proto]
            if method in spec.once:
                new[var] = (proto, called | {method})
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name in _assigned_names(item.optional_vars):
                        new.pop(name, None)  # __exit__ owns the lifecycle
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            for name in _assigned_names(stmt.target):
                new.pop(name, None)
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            var = stmt.targets[0].id
            proto = self.ctor_protocol(stmt.value)
            if proto is not None:
                new[var] = (proto, frozenset())
            else:
                new.pop(var, None)
        return new


def _receiver_calls(
    stmt: ast.stmt, state: "dict[str, tuple[str, frozenset[str]]]"
) -> "Iterator[tuple[str, str]]":
    """``(var, method)`` for each tracked-receiver method call here."""
    for expr in header_exprs(stmt):
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in state
            ):
                yield node.func.value.id, node.func.attr


@register
class LifecycleTypestateRule(ProjectRule):
    """IPD012: close-exactly-once / no use after close, path-sensitively."""

    code = "IPD012"
    name = "lifecycle-typestate"
    invariant = (
        "runtime resources (Sink, ShmRing, CheckpointStore, Pipeline, "
        "LivePipeline) are closed exactly once and never used after "
        "close on any path; LivePipeline.start() runs at most once"
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for module in graph.modules:
            for func, cls in _functions_of(module):
                yield from self._check_function(graph, module, func, cls)

    def _check_function(
        self,
        graph: ProjectGraph,
        module: ModuleInfo,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        cls: Optional[ClassInfo],
    ) -> Iterator[Finding]:
        def resolve(expr: ast.expr) -> Optional[str]:
            return self._ctor_protocol(graph, module, expr)

        analysis = _LifecycleAnalysis(resolve)
        cfg = build_cfg(func)
        states = analysis.entry_states(cfg)
        flagged: set[tuple[int, str]] = set()
        for state, stmt in analysis.replay(cfg, states):
            for expr in header_exprs(stmt):
                for node in ast.walk(expr):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                    ):
                        continue
                    var = node.func.value.id
                    entry = state.get(var)
                    if entry is None:
                        continue
                    proto, called = entry
                    spec = _LIFECYCLE_PROTOCOLS[proto]
                    method = node.func.attr
                    mark = (node.lineno, f"{var}.{method}")
                    if mark in flagged:
                        continue
                    if method in spec.once and method in called:
                        flagged.add(mark)
                        yield Finding(
                            rule=self.code,
                            path=module.source.display_path,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            message=(
                                f"{var}.{method}() runs again on a path "
                                f"where {proto}.{method}() already ran — "
                                f"{method} is exactly-once in the "
                                f"{proto} lifecycle"
                            ),
                        )
                    elif method in spec.use and called & spec.closers:
                        flagged.add(mark)
                        yield Finding(
                            rule=self.code,
                            path=module.source.display_path,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            message=(
                                f"{var}.{method}() after close() — the "
                                f"{proto} lifecycle forbids use after "
                                "close"
                            ),
                        )

    def _ctor_protocol(
        self, graph: ProjectGraph, module: ModuleInfo, expr: ast.expr
    ) -> Optional[str]:
        """The lifecycle protocol a constructor expression produces."""
        if not isinstance(expr, ast.Call):
            return None
        func = expr.func
        if isinstance(func, ast.Name):
            return self._class_protocol(graph, module, func.id)
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            # classmethod constructors: Pipeline.resume(...), etc.
            proto = self._class_protocol(graph, module, func.value.id)
            if proto is not None and self._is_classmethod(
                graph, module, func.value.id, func.attr
            ):
                return proto
        return None

    @staticmethod
    def _class_protocol(
        graph: ProjectGraph, module: ModuleInfo, name: str
    ) -> Optional[str]:
        resolved = graph.resolve_class(module, name)
        if resolved is not None:
            names = graph.ancestry(resolved)
            hits = names & _LIFECYCLE_PROTOCOLS.keys()
            if not hits:
                return None
            if resolved.name in hits:
                return resolved.name
            return sorted(hits)[0]
        if name in _LIFECYCLE_PROTOCOLS:
            return name  # imported from outside the scanned set
        return None

    @staticmethod
    def _is_classmethod(
        graph: ProjectGraph, module: ModuleInfo, cls_name: str, method: str
    ) -> bool:
        resolved = graph.resolve_class(module, cls_name)
        if resolved is None:
            return False
        node = resolved.methods.get(method)
        if node is None:
            return False
        for decorator in node.decorator_list:
            target = decorator
            if isinstance(target, ast.Name) and target.id == "classmethod":
                return True
        return False
