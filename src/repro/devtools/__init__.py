"""Developer tooling: the invariant-enforcing static analysis suite.

``repro.devtools`` machine-checks the implementation invariants the
reproduction's correctness story depends on (DESIGN.md §10):

=======  ==================  ====================================================
code     name                invariant
=======  ==================  ====================================================
IPD001   no-wallclock        engine code never reads the wall clock
IPD002   seeded-rng          all randomness is explicitly seeded
IPD003   exception-taxonomy  runtime failure paths stay typed, never swallow
IPD004   codec-guard         codec layout changes require a CODEC_VERSION bump
IPD005   hot-path-hygiene    ``@hot_path`` loops stay allocation-clean
IPD006   fault-seam          every ``fault_hook`` parameter defaults to None
IPD007   no-pickle-hot-path  no object serialization on hot paths / shm plane
IPD008   lookup-alloc-free   ``@hot_path`` ``lookup*`` never allocates containers
=======  ==================  ====================================================

Run it with ``python -m repro.devtools.lint src/repro``; suppress one
finding with a trailing ``# ipd-lint: disable=<rule>`` comment.  The
package deliberately imports none of the engine: linting a tree never
executes it.
"""

from .framework import (
    ContextVisitor,
    Finding,
    LintReport,
    Rule,
    SourceFile,
    build_rules,
    lint_paths,
    register,
    registered_rules,
)
from .markers import hot_path

__all__ = [
    "ContextVisitor",
    "Finding",
    "LintReport",
    "Rule",
    "SourceFile",
    "build_rules",
    "hot_path",
    "lint_paths",
    "register",
    "registered_rules",
]
