"""Developer tooling: the invariant-enforcing static analysis suite.

``repro.devtools`` machine-checks the implementation invariants the
reproduction's correctness story depends on (DESIGN.md §10):

=======  ==================  ====================================================
code     name                invariant
=======  ==================  ====================================================
IPD001   no-wallclock        engine code never reads the wall clock
IPD002   seeded-rng          all randomness is explicitly seeded
IPD003   exception-taxonomy  runtime failure paths stay typed, never swallow
IPD004   codec-guard         codec layout changes require a CODEC_VERSION bump
IPD005   hot-path-hygiene    ``@hot_path`` loops stay allocation-clean
IPD006   fault-seam          every ``fault_hook`` parameter defaults to None
IPD007   no-pickle-hot-path  no object serialization on hot paths / shm plane
IPD008   lookup-alloc-free   ``@hot_path`` ``lookup*`` never allocates containers
IPD009   codec-symmetry      encode/decode twins mirror each other's wire ops
IPD010   iteration-order-taint  unordered iteration never feeds serialized output
IPD011   executor-state-discipline  worker state crosses only the op protocol
IPD012   lifecycle-typestate close-exactly-once, no use after close
=======  ==================  ====================================================

IPD001–IPD008 are single-file visitor rules; IPD009–IPD012 are
cross-module dataflow rules built on the project symbol graph
(``project.py``) and the per-function CFG/fixpoint framework
(``dataflow.py``), with results cached by file content hash
(``--cache-dir``).

Run it with ``python -m repro.devtools.lint src/repro``; suppress one
finding with a trailing ``# ipd-lint: disable=<rule>`` comment.  The
package deliberately imports none of the engine: linting a tree never
executes it.
"""

from .framework import (
    ContextVisitor,
    Finding,
    LintReport,
    Rule,
    SourceFile,
    build_rules,
    lint_paths,
    register,
    registered_rules,
)
from .markers import hot_path

__all__ = [
    "ContextVisitor",
    "Finding",
    "LintReport",
    "Rule",
    "SourceFile",
    "build_rules",
    "hot_path",
    "lint_paths",
    "register",
    "registered_rules",
]
