"""Per-function control-flow graphs and a small forward fixpoint framework.

The cross-module rules that reason about *execution order* — IPD010's
iteration-order taint and IPD012's lifecycle typestate — need more than
a syntactic walk: whether ``ring.recv()`` runs after ``ring.close()``
depends on branches, loops and ``try``/``finally``, not on line order.
This module gives them just enough machinery:

* :func:`build_cfg` lowers one function body into basic blocks.
  Compound statements appear in their *header* block as the raw AST
  node (so a transfer function can read ``If.test`` or ``For.iter``
  without recursing into the body, which lives in successor blocks).
  ``try`` bodies edge into their handlers from both the block before
  and the end of the body — any statement may raise — and ``finally``
  joins both paths.
* :class:`ForwardAnalysis` runs a classic worklist fixpoint over the
  CFG: states propagate along edges, ``join`` merges at confluence
  points, and iteration stops when nothing changes.  Subclasses choose
  the lattice: a *may* analysis joins with union (IPD010's taint), a
  *must* analysis joins with intersection (IPD012's
  definitely-already-closed facts).

After the fixpoint, :meth:`ForwardAnalysis.entry_states` hands back the
stable state at each block entry; rules replay each block once against
it to report violations, so a fact is only flagged when it holds on
*every* path (must) or *some* path (may) — never because of the order
two branches happen to appear in the file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Generic, Iterator, Optional, Sequence, TypeVar

__all__ = ["Block", "CFG", "build_cfg", "ForwardAnalysis", "header_exprs"]


@dataclass
class Block:
    """One basic block: straight-line statements plus successor edges."""

    id: int
    items: list[ast.stmt] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)


@dataclass
class CFG:
    """A function body lowered to blocks; entry is block 0."""

    blocks: list[Block]

    @property
    def entry(self) -> Block:
        return self.blocks[0]


def header_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions evaluated *at* a statement, body excluded.

    For a simple statement that is every expression it contains; for a
    compound statement only its header (an ``if`` test, a loop
    iterable, ``with`` context managers) — the body belongs to other
    blocks.
    """
    if isinstance(stmt, ast.If) or isinstance(stmt, ast.While):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Raise):
        return [expr for expr in (stmt.exc, stmt.cause) if expr is not None]
    out: list[ast.expr] = []
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            out.append(child)
    return out


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[Block] = [Block(0)]

    def new_block(self) -> int:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block.id

    def edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)

    def lower(
        self,
        stmts: Sequence[ast.stmt],
        current: int,
        breaks: "list[int]",
        continues: "list[int]",
    ) -> Optional[int]:
        """Lower *stmts* starting in block *current*.

        Returns the open block the next statement would land in, or
        ``None`` when every path terminated (return/raise/break/...).
        """
        cur: Optional[int] = current
        for stmt in stmts:
            if cur is None:  # unreachable code after a terminator
                return None
            if isinstance(stmt, ast.If):
                self.blocks[cur].items.append(stmt)
                then_b = self.new_block()
                else_b = self.new_block()
                self.edge(cur, then_b)
                self.edge(cur, else_b)
                then_exit = self.lower(stmt.body, then_b, breaks, continues)
                else_exit = self.lower(stmt.orelse, else_b, breaks, continues)
                exits = [b for b in (then_exit, else_exit) if b is not None]
                if not exits:
                    cur = None
                    continue
                join = self.new_block()
                for b in exits:
                    self.edge(b, join)
                cur = join
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                head = self.new_block()
                self.edge(cur, head)
                self.blocks[head].items.append(stmt)
                body_b = self.new_block()
                after = self.new_block()
                self.edge(head, body_b)
                self.edge(head, after)
                body_exit = self.lower(
                    stmt.body,
                    body_b,
                    breaks + [after],
                    continues + [head],
                )
                if body_exit is not None:
                    self.edge(body_exit, head)
                cur = self.lower(stmt.orelse, after, breaks, continues)
            elif isinstance(stmt, ast.Try):
                self.blocks[cur].items.append(stmt)
                body_b = self.new_block()
                self.edge(cur, body_b)
                body_exit = self.lower(stmt.body, body_b, breaks, continues)
                handler_exits: list[int] = []
                for handler in stmt.handlers:
                    h_b = self.new_block()
                    # any point in the body may raise: edge from both
                    # the pre-body block and the end of the body
                    self.edge(cur, h_b)
                    if body_exit is not None:
                        self.edge(body_exit, h_b)
                    h_exit = self.lower(handler.body, h_b, breaks, continues)
                    if h_exit is not None:
                        handler_exits.append(h_exit)
                else_exit = body_exit
                if stmt.orelse and body_exit is not None:
                    else_b = self.new_block()
                    self.edge(body_exit, else_b)
                    else_exit = self.lower(
                        stmt.orelse, else_b, breaks, continues
                    )
                exits = [
                    b
                    for b in [else_exit, *handler_exits]
                    if b is not None
                ]
                if stmt.finalbody:
                    final_b = self.new_block()
                    for b in exits:
                        self.edge(b, final_b)
                    if not exits:
                        # finally still runs on the exceptional path
                        self.edge(cur, final_b)
                    cur = self.lower(
                        stmt.finalbody, final_b, breaks, continues
                    )
                elif exits:
                    join = self.new_block()
                    for b in exits:
                        self.edge(b, join)
                    cur = join
                else:
                    cur = None
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self.blocks[cur].items.append(stmt)
                body_b = self.new_block()
                self.edge(cur, body_b)
                cur = self.lower(stmt.body, body_b, breaks, continues)
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                self.blocks[cur].items.append(stmt)
                cur = None
            elif isinstance(stmt, ast.Break):
                if breaks:
                    self.edge(cur, breaks[-1])
                cur = None
            elif isinstance(stmt, ast.Continue):
                if continues:
                    self.edge(cur, continues[-1])
                cur = None
            else:
                self.blocks[cur].items.append(stmt)
        return cur


def build_cfg(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> CFG:
    """Lower *func*'s body into a control-flow graph."""
    builder = _Builder()
    builder.lower(func.body, 0, [], [])
    return CFG(blocks=builder.blocks)


S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """Worklist forward dataflow over a :class:`CFG`.

    Subclasses define the lattice: :meth:`initial_state` (at function
    entry), :meth:`join` (at merge points — union for a *may* analysis,
    intersection for a *must* analysis), and :meth:`transfer` (one
    statement's effect).  States must be immutable values comparable
    with ``==``.
    """

    #: safety valve: no realistic function body needs more sweeps
    max_iterations = 10_000

    def initial_state(self) -> S:
        raise NotImplementedError

    def join(self, left: S, right: S) -> S:
        raise NotImplementedError

    def transfer(self, state: S, stmt: ast.stmt) -> S:
        raise NotImplementedError

    def entry_states(self, cfg: CFG) -> dict[int, S]:
        """Run to fixpoint; returns the stable state at each block entry.

        Unreachable blocks are absent from the result.
        """
        states: dict[int, S] = {0: self.initial_state()}
        worklist = [0]
        iterations = 0
        while worklist and iterations < self.max_iterations:
            iterations += 1
            block_id = worklist.pop()
            state = states[block_id]
            for stmt in cfg.blocks[block_id].items:
                state = self.transfer(state, stmt)
            for succ in cfg.blocks[block_id].succs:
                if succ in states:
                    merged = self.join(states[succ], state)
                else:
                    merged = state
                if succ not in states or merged != states[succ]:
                    states[succ] = merged
                    worklist.append(succ)
        return states

    def replay(
        self, cfg: CFG, states: "dict[int, S]"
    ) -> Iterator[tuple[S, ast.stmt]]:
        """Yield ``(state-before, statement)`` once per reachable statement."""
        for block in cfg.blocks:
            if block.id not in states:
                continue
            state = states[block.id]
            for stmt in block.items:
                yield state, stmt
                state = self.transfer(state, stmt)
