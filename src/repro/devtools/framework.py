"""Visitor core and rule registry for the IPD invariant lint.

The repro's correctness story rests on a small set of *implementation*
invariants that ordinary tests only catch after the fact: determinism
(no wall-clock or unseeded randomness in engine code), byte-exact
float-sum ordering in the Algorithm-1 hot paths, a typed exception
taxonomy on the runtime/checkpoint failure paths, and a versioned state
codec.  This package machine-checks them *statically*, so a PR that
breaks one fails before a single test runs.

Architecture
------------

* :class:`SourceFile` — one parsed module: source text, AST, and the
  per-line suppression map built from ``# ipd-lint: disable=<rule>``
  comments.
* :class:`Rule` — one invariant.  A rule declares its ``code``
  (``IPD001``...), a one-line ``invariant`` statement, an optional path
  scope (:meth:`Rule.applies_to`), and yields :class:`Finding`s from
  :meth:`Rule.check`.
* :class:`ContextVisitor` — shared AST visitor base that tracks the
  context most rules need: the enclosing function stack, whether that
  function is marked ``@hot_path``, and the ``for``/``while`` loop
  nesting depth.
* :class:`ProjectRule` — a rule that needs the whole scanned file set
  at once (cross-module analysis over the
  :class:`~repro.devtools.project.ProjectGraph`) instead of one file
  at a time.  Project rules run once per lint invocation, after the
  per-file rules, and their findings are cached by the content hashes
  of every scanned file (see :mod:`repro.devtools.project`).
* registry — rules register themselves with :func:`register`; the
  runner (:func:`lint_paths`) instantiates the registered set (or a
  ``--select`` subset), applies scopes and suppressions, and returns a
  :class:`LintReport`.

Suppression
-----------

A finding is suppressed by a trailing comment on the *flagged line*::

    self._clock = clock or time.monotonic  # ipd-lint: disable=IPD001

Multiple rules separate with commas (``disable=IPD001,IPD005``);
``disable=all`` silences every rule for that line.  Suppressions are
deliberately line-scoped — there is no file- or block-level escape
hatch, so every exemption is visible next to the code it exempts.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence, Type

if TYPE_CHECKING:  # runtime import would cycle (project imports framework)
    from .project import ProjectGraph

__all__ = [
    "Finding",
    "SourceFile",
    "Rule",
    "ContextVisitor",
    "ProjectRule",
    "LintReport",
    "collect_import_aliases",
    "register",
    "registered_rules",
    "build_rules",
    "iter_source_files",
    "lint_paths",
]

#: rule code for files the linter itself cannot parse
PARSE_ERROR_CODE = "IPD000"

_SUPPRESS_RE = re.compile(r"#\s*ipd-lint:\s*disable=([A-Za-z0-9_,\s]+)")

_SKIP_DIRS = {"__pycache__", ".git", "build", "dist"}


def collect_import_aliases(
    tree: ast.AST,
) -> tuple[dict[str, str], dict[str, tuple[str, str]]]:
    """Resolve the local names an ``import`` statement binds.

    Returns ``(module_aliases, symbol_aliases)``: ``module_aliases``
    maps a local name to the dotted module it denotes (``import
    datetime as d`` -> ``{"d": "datetime"}``), ``symbol_aliases`` maps
    a local name to ``(module, symbol)`` (``from datetime import
    datetime as dtc`` -> ``{"dtc": ("datetime", "datetime")}``).
    Relative imports keep their leading dots in the module key so
    callers can resolve them against the importing module's package.
    """
    modules: dict[str, str] = {}
    symbols: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                modules[local] = target
        elif isinstance(node, ast.ImportFrom):
            module = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                symbols[alias.asname or alias.name] = (module, alias.name)
    return modules, symbols


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


class SourceFile:
    """A parsed module plus everything the rules need to inspect it."""

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        self.root = root
        try:
            self.rel = path.relative_to(root).as_posix()
        except ValueError:  # scanned file outside the scan root
            self.rel = path.name
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.Module] = ast.parse(self.text)
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = exc
        self._suppressions = self._scan_suppressions()
        self._import_aliases: (
            "tuple[dict[str, str], dict[str, tuple[str, str]]] | None"
        ) = None

    def import_aliases(
        self,
    ) -> tuple[dict[str, str], dict[str, tuple[str, str]]]:
        """The module's import table (see :func:`collect_import_aliases`)."""
        if self._import_aliases is None:
            if self.tree is None:
                self._import_aliases = ({}, {})
            else:
                self._import_aliases = collect_import_aliases(self.tree)
        return self._import_aliases

    @property
    def display_path(self) -> str:
        """Path as reported in findings (relative to the invoking cwd)."""
        try:
            return self.path.resolve().relative_to(Path.cwd()).as_posix()
        except ValueError:
            return str(self.path)

    def _scan_suppressions(self) -> dict[int, set[str]]:
        table: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            if "ipd-lint" not in line:
                continue
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            codes = {
                code.strip().upper()
                for code in match.group(1).split(",")
                if code.strip()
            }
            if codes:
                table[lineno] = codes
        return table

    def suppressed(self, rule: str, line: int) -> bool:
        codes = self._suppressions.get(line)
        if codes is None:
            return False
        return rule.upper() in codes or "ALL" in codes

    def finding(self, rule: "Rule | str", node: ast.AST, message: str) -> Finding:
        code = rule if isinstance(rule, str) else rule.code
        return Finding(
            rule=code,
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class Rule:
    """Base class for one lint rule (one machine-checked invariant)."""

    #: stable identifier, e.g. ``IPD001`` — used in output and suppressions
    code: str = ""
    #: short kebab-case name, e.g. ``no-wallclock``
    name: str = ""
    #: one-line statement of the invariant the rule enforces
    invariant: str = ""

    def applies_to(self, source: SourceFile) -> bool:
        """Path scope; default is every scanned file."""
        return True

    def check(self, source: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def describe(self) -> dict[str, str]:
        return {"code": self.code, "name": self.name, "invariant": self.invariant}


class ContextVisitor(ast.NodeVisitor):
    """AST visitor tracking function / hot-path / loop context.

    Subclasses get:

    * ``self.source`` — the :class:`SourceFile` under inspection
    * ``self.findings`` — append :class:`Finding`s here
    * ``self.function_stack`` — enclosing ``FunctionDef``s, innermost last
    * ``self.hot_depth`` — > 0 inside a function marked ``@hot_path``
    * ``self.loop_depth`` — ``for``/``while`` nesting depth *within the
      innermost function* (reset at function boundaries)
    """

    def __init__(self, rule: Rule, source: SourceFile) -> None:
        self.rule = rule
        self.source = source
        self.findings: list[Finding] = []
        self.function_stack: list[ast.AST] = []
        self.hot_depth = 0
        self.loop_depth = 0

    # -- context maintenance -------------------------------------------------

    def _is_hot_marker(self, decorator: ast.expr) -> bool:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name):
            return target.id == "hot_path"
        if isinstance(target, ast.Attribute):
            return target.attr == "hot_path"
        return False

    def _visit_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        hot = any(self._is_hot_marker(dec) for dec in node.decorator_list)
        outer_loop_depth = self.loop_depth
        outer_hot_depth = self.hot_depth
        self.loop_depth = 0
        # a nested def opens a fresh runtime scope: the enclosing
        # function's hot-path context does not apply to its body unless
        # the nested function carries its own @hot_path marker
        if self.function_stack and not hot:
            self.hot_depth = 0
        self.function_stack.append(node)
        if hot:
            self.hot_depth += 1
        self.enter_function(node, hot)
        self.generic_visit(node)
        self.function_stack.pop()
        self.hot_depth = outer_hot_depth
        self.loop_depth = outer_loop_depth

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # a lambda body runs in its own (never-hot) scope, like a
        # nested def: neither hot-path nor loop context leaks in
        outer_loop_depth = self.loop_depth
        outer_hot_depth = self.hot_depth
        self.loop_depth = 0
        self.hot_depth = 0
        self.function_stack.append(node)
        self.generic_visit(node)
        self.function_stack.pop()
        self.hot_depth = outer_hot_depth
        self.loop_depth = outer_loop_depth

    def _visit_loop(self, node: "ast.For | ast.While | ast.AsyncFor") -> None:
        # the iterable / condition is evaluated outside the loop body
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self.visit(node.iter)
            self.visit(node.target)
        else:
            self.visit(node.test)
        self.loop_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.loop_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_For(self, node: ast.For) -> None:
        self._visit_loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._visit_loop(node)

    # -- subclass hooks ------------------------------------------------------

    def enter_function(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef", hot: bool
    ) -> None:
        """Called when a function scope opens (before its body is visited)."""

    # -- reporting -----------------------------------------------------------

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.source.finding(self.rule, node, message))


class VisitorRule(Rule):
    """A rule implemented as one :class:`ContextVisitor` pass."""

    visitor_class: Type[ContextVisitor] = ContextVisitor

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.tree is None:
            return
        visitor = self.visitor_class(self, source)
        visitor.visit(source.tree)
        yield from visitor.findings


class ProjectRule(Rule):
    """A rule over the whole scanned file set (cross-module analysis).

    Project rules do not run per file; :func:`lint_paths` builds one
    :class:`~repro.devtools.project.ProjectGraph` over every parsed
    source and calls :meth:`check_project` once.  Their findings are
    cacheable by the content hashes of the scanned files.
    """

    def check(self, source: SourceFile) -> Iterator[Finding]:
        return iter(())

    def check_project(self, graph: "ProjectGraph") -> Iterator[Finding]:
        """Yield findings over a :class:`ProjectGraph`."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    code = rule_class.code
    if not code:
        raise ValueError(f"rule {rule_class.__name__} has no code")
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code}")
    _REGISTRY[code] = rule_class
    return rule_class


def registered_rules() -> dict[str, Type[Rule]]:
    """The registered rule classes, keyed by code (copy)."""
    return dict(_REGISTRY)


def build_rules(
    select: Optional[Sequence[str]] = None, **config: object
) -> list[Rule]:
    """Instantiate the registered rules (or the ``select`` subset).

    ``config`` entries are applied as attributes to any rule that
    declares them (e.g. ``codec_pins=...`` for IPD004), so tests can
    point a rule at fixture configuration without a parallel registry.
    """
    # rules register on import of the rules modules; import lazily to
    # avoid a cycle (rules import framework)
    from . import crossrules as _crossrules  # noqa: F401
    from . import rules as _rules  # noqa: F401  (import registers rules)

    if select is not None:
        unknown = [code for code in select if code.upper() not in _REGISTRY]
        if unknown:
            known = ", ".join(sorted(_REGISTRY))
            raise ValueError(
                f"unknown rule code(s) {', '.join(unknown)}; known: {known}"
            )
        codes = [code.upper() for code in select]
    else:
        codes = sorted(_REGISTRY)
    rules: list[Rule] = []
    for code in codes:
        rule = _REGISTRY[code]()
        for key, value in config.items():
            if hasattr(type(rule), key) or hasattr(rule, key):
                setattr(rule, key, value)
        rules.append(rule)
    return rules


# ---------------------------------------------------------------------------
# runner
# ---------------------------------------------------------------------------


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    rules: list[Rule] = field(default_factory=list)
    #: True when the cross-module findings came from the content-hash cache
    cache_hit: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_dict(self) -> dict[str, object]:
        return {
            "files_scanned": self.files_scanned,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressed": self.suppressed,
            "counts": self.by_rule(),
            "clean": self.clean,
            "cache_hit": self.cache_hit,
        }


def iter_source_files(paths: Iterable[Path]) -> Iterator[tuple[Path, Path]]:
    """Yield ``(scan_root, file)`` for every Python file under *paths*."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path.parent, path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for file in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in file.parts):
                continue
            if any(part.endswith(".egg-info") for part in file.parts):
                continue
            yield path, file


def lint_paths(
    paths: "Sequence[Path | str]",
    select: Optional[Sequence[str]] = None,
    cache_dir: "Path | str | None" = None,
    **config: object,
) -> LintReport:
    """Run the registered rules over *paths* and return the report.

    ``cache_dir`` enables the cross-module findings cache: project-rule
    results are keyed by the content hashes of every scanned file, so
    an unchanged tree skips the whole-project analysis on re-run.
    """
    rules = build_rules(select, **config)
    file_rules = [rule for rule in rules if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    report = LintReport(rules=rules)
    sources: list[SourceFile] = []
    for root, file in iter_source_files(Path(p) for p in paths):
        source = SourceFile(file, root)
        report.files_scanned += 1
        if source.syntax_error is not None:
            err = source.syntax_error
            report.findings.append(
                Finding(
                    rule=PARSE_ERROR_CODE,
                    path=source.display_path,
                    line=err.lineno or 1,
                    col=(err.offset or 0) + 1,
                    message=f"file does not parse: {err.msg}",
                )
            )
            continue
        sources.append(source)
        for rule in file_rules:
            if not rule.applies_to(source):
                continue
            for finding in rule.check(source):
                if source.suppressed(finding.rule, finding.line):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)
    if project_rules and sources:
        _run_project_rules(report, project_rules, sources, cache_dir)
    report.findings.sort(key=Finding.sort_key)
    return report


def _run_project_rules(
    report: LintReport,
    project_rules: "list[Rule]",
    sources: "list[SourceFile]",
    cache_dir: "Path | str | None",
) -> None:
    """Run the cross-module rules once, through the findings cache."""
    # imported lazily: project imports this module for SourceFile
    from .project import FindingsCache, ProjectGraph, project_cache_key

    cache = FindingsCache(cache_dir) if cache_dir is not None else None
    key = None
    if cache is not None:
        key = project_cache_key(sources, project_rules)
        cached = cache.load(key)
        if cached is not None:
            report.findings.extend(
                Finding(**entry) for entry in cached["findings"]
            )
            report.suppressed += cached["suppressed"]
            report.cache_hit = True
            return
    graph = ProjectGraph(sources)
    by_path = {source.display_path: source for source in sources}
    findings: list[Finding] = []
    suppressed = 0
    for rule in project_rules:
        for finding in rule.check_project(graph):
            origin = by_path.get(finding.path)
            if origin is not None and origin.suppressed(
                finding.rule, finding.line
            ):
                suppressed += 1
            else:
                findings.append(finding)
    report.findings.extend(findings)
    report.suppressed += suppressed
    if cache is not None and key is not None:
        cache.store(
            key,
            {
                "findings": [finding.to_dict() for finding in findings],
                "suppressed": suppressed,
            },
        )
