"""Deterministic fixture traces shared by the correctness suites.

Two canonical workloads, each paired with the parameters that make it
interesting at test scale:

* :func:`fig05_trace` — the paper's algorithm example (§3.1/Fig. 5
  shape): four ingresses own four corners of IPv4 space, driving the
  split cascade from /0 and classifying each quarter; one corner goes
  dark halfway through to exercise expiry, decay and drop.
* :func:`dualstack_trace` — seeded pseudo-random interleaved IPv4+IPv6
  churn: ownership remaps mid-run, 5% ingress noise, byte-weighted
  flows.  Exercises joins, re-splits and the byte-counting mode.

These were historically private helpers of the batch-equivalence suite;
they live here so the differential-oracle and chaos suites (and any
downstream user of :mod:`repro.testkit`) replay the exact same streams.
"""

from __future__ import annotations

import random

from ..core.iputil import IPV4, IPV6, parse_ip
from ..core.params import IPDParams
from ..netflow.records import FlowRecord
from ..topology.elements import IngressPoint

__all__ = [
    "CORNERS",
    "DUALSTACK_PARAMS",
    "FIG05_PARAMS",
    "dualstack_trace",
    "fig05_trace",
]

NORTH = IngressPoint("R1", "et0")
EAST = IngressPoint("R2", "et0")
SOUTH = IngressPoint("R3", "et0")
WEST = IngressPoint("R4", "et0")
CORNERS = (NORTH, EAST, SOUTH, WEST)

#: thresholds that let the fig05 corners classify within twelve rounds
FIG05_PARAMS = IPDParams(n_cidr_factor_v4=0.005, n_cidr_factor_v6=0.005)

#: dual-stack run counts bytes, with factors sized for its flow volume
DUALSTACK_PARAMS = IPDParams(
    n_cidr_factor_v4=0.002, n_cidr_factor_v6=0.002, count_bytes=True
)


def fig05_trace() -> list[FlowRecord]:
    """The algorithm example: four ingresses own four corners of v4 space.

    Twelve 60 s rounds of 40 flows per corner — enough to drive the
    split cascade from /0 down and classify each quarter, with one
    corner going quiet halfway (expiry + decay + drop coverage).
    """
    flows: list[FlowRecord] = []
    corner_bases = [
        parse_ip("10.0.0.0")[0],
        parse_ip("80.0.0.0")[0],
        parse_ip("140.0.0.0")[0],
        parse_ip("200.0.0.0")[0],
    ]
    for round_index in range(12):
        round_start = round_index * 60.0
        for corner, base in zip(CORNERS, corner_bases):
            if corner is WEST and round_index >= 6:
                continue  # west goes dark: expiry/decay/drop path
            for flow_index in range(40):
                flows.append(
                    FlowRecord(
                        timestamp=round_start + flow_index * 1.4,
                        src_ip=base + (flow_index % 16) * 16,
                        version=IPV4,
                        ingress=corner,
                    )
                )
    flows.sort(key=lambda flow: flow.timestamp)
    return flows


def dualstack_trace(seed: int = 11) -> list[FlowRecord]:
    """Interleaved v4+v6 flows with churn: remaps, noise, idle gaps."""
    rng = random.Random(seed)
    v4_bases = [parse_ip(f"{10 + 40 * i}.0.0.0")[0] for i in range(4)]
    v6_bases = [parse_ip(f"2001:db8:{i:x}::")[0] for i in range(4)]
    flows: list[FlowRecord] = []
    for round_index in range(10):
        round_start = round_index * 60.0
        for slot in range(120):
            ts = round_start + slot * 0.5
            zone = rng.randrange(4)
            # owner remaps halfway through; 5% noise from a random ingress
            owner = CORNERS[zone] if round_index < 5 else CORNERS[(zone + 1) % 4]
            ingress = rng.choice(CORNERS) if rng.random() < 0.05 else owner
            if rng.random() < 0.3:
                base = v6_bases[zone]
                version = IPV6
                src = base + rng.randrange(64) * (1 << 64)
            else:
                base = v4_bases[zone]
                version = IPV4
                src = base + rng.randrange(64) * 16
            flows.append(
                FlowRecord(timestamp=ts, src_ip=src, version=version,
                           ingress=ingress, bytes=rng.choice((64, 576, 1500)))
            )
    flows.sort(key=lambda flow: flow.timestamp)
    return flows
