"""A paper-literal reference implementation of IPD — the differential oracle.

:class:`ReferenceIPD` re-implements Algorithm 1 exactly as §3.2 of the
paper states it, with none of the production engine's machinery: no
dirty sets, no expiry heap, no lookup cache, no incrementally maintained
counters, no columnar batching.  Every sweep walks every leaf; every
total is recomputed from the raw per-source dicts on demand.  It is
deliberately slow and deliberately simple — the point is that a reader
can check it against the paper line by line, and the differential suite
(``tests/testkit/``) can check the optimized engine against *it* at
every sweep tick.

It emits the production types (:class:`~repro.core.algorithm.SweepReport`
and :class:`~repro.core.output.IPDRecord`) so comparisons are plain
``==``.  Numeric equality is exact, not approximate: sample weights are
integer-valued (flow or byte counts), so float sums are order
independent, and the one non-integer path — decayed classified counters
— reproduces the engine's counter insertion order by construction
(per-source dicts grow in stream order, classification snapshots them in
that order, decay preserves it).

Only the ``ORACLE_REPORT_FIELDS`` of a sweep report are comparable: the
oracle has no cache and visits every leaf, so ``visited``, ``cache_*``
and ``duration_seconds`` legitimately differ from a dirty-sweep engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:
    from ..runtime.result import RunResult

from ..core.algorithm import SweepReport
from ..core.iputil import IPV4, IPV6, Prefix, mask_ip
from ..core.lbdetect import LBDetectorLike
from ..core.output import IPDRecord
from ..core.params import DEFAULT_PARAMS, IPDParams
from ..netflow.records import FlowBatch, FlowRecord
from ..topology.elements import IngressPoint

__all__ = [
    "ORACLE_REPORT_FIELDS",
    "ReferenceIPD",
    "assert_engines_equivalent",
    "compare_reports",
    "replay_reference",
]

#: SweepReport fields that are algorithmically meaningful and therefore
#: must agree between the engine and the oracle.  ``visited`` and the
#: ``cache_*`` counters are implementation detail of the dirty-sweep
#: machinery; ``duration_seconds`` is wall clock.
ORACLE_REPORT_FIELDS = (
    "timestamp", "leaves", "leaves_by_version", "classified",
    "classifications", "splits", "joins", "drops", "prunes",
    "expired_sources", "decayed_ranges",
)

#: counter floor used by the engine's decay (ClassifiedState.decay)
_DECAY_FLOOR = 1e-9


@dataclass
class _Classified:
    """Aggregate state of a classified range (paper: "all state is
    removed for efficiency reasons" — only per-ingress counters stay)."""

    ingress: IngressPoint
    counters: dict[IngressPoint, float]
    last_seen: float
    classified_at: float


class _Node:
    """One trie node; a leaf holds either per-source dicts or ``cls``."""

    __slots__ = ("prefix", "parent", "left", "right", "per_ip", "last_seen",
                 "cls", "dead")

    def __init__(self, prefix: Prefix, parent: "Optional[_Node]" = None) -> None:
        self.prefix = prefix
        self.parent = parent
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        #: masked source IP -> ingress -> accumulated sample weight
        self.per_ip: dict[int, dict[IngressPoint, float]] = {}
        #: masked source IP -> newest sample timestamp
        self.last_seen: dict[int, float] = {}
        self.cls: Optional[_Classified] = None
        self.dead = False

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _leaves(root: _Node) -> Iterable[_Node]:
    """All leaves under *root* in address order."""
    stack = [root]
    while stack:
        node = stack.pop()
        if node.left is None:
            yield node
        else:
            right = node.right
            assert right is not None  # internal nodes have both children
            stack.append(right)
            stack.append(node.left)


class ReferenceIPD:
    """Naive, dict-based IPD Stage 1/2 — the executable specification.

    Mirrors the public surface the differential suite needs from
    :class:`~repro.core.algorithm.IPD`: ``ingest`` / ``ingest_many``,
    ``sweep``, ``snapshot``, ``state_size``, ``leaf_count``, and the
    §5.8 ``lb_detector`` hand-off including ``_cidrmax_failures``.
    """

    def __init__(
        self,
        params: IPDParams | None = None,
        lb_detector: LBDetectorLike | None = None,
        lb_patience: int = 3,
    ) -> None:
        self.params = params or DEFAULT_PARAMS
        self.roots: dict[int, _Node] = {
            version: _Node(Prefix.root(version)) for version in (IPV4, IPV6)
        }
        self.flows_ingested = 0
        self.bytes_ingested = 0
        self.last_sweep_at: float | None = None
        self.lb_detector = lb_detector
        self.lb_patience = lb_patience
        self._cidrmax_failures: dict[Prefix, int] = {}

    # ------------------------------------------------------------------ stage 1

    def ingest(self, flow: FlowRecord) -> None:
        """Algorithm 1 lines 1-4: mask the source, add to the covering range."""
        params = self.params
        masked = mask_ip(flow.src_ip, params.cidr_max(flow.version), flow.version)
        leaf = self._lookup(self.roots[flow.version], masked)
        weight = float(flow.bytes) if params.count_bytes else 1.0
        if leaf.cls is None:
            by_ingress = leaf.per_ip.setdefault(masked, {})
            by_ingress[flow.ingress] = by_ingress.get(flow.ingress, 0.0) + weight
            previous = leaf.last_seen.get(masked)
            if previous is None or flow.timestamp > previous:
                leaf.last_seen[masked] = flow.timestamp
        else:
            cls = leaf.cls
            cls.counters[flow.ingress] = (
                cls.counters.get(flow.ingress, 0.0) + weight
            )
            if flow.timestamp > cls.last_seen:
                cls.last_seen = flow.timestamp
        self.flows_ingested += 1
        self.bytes_ingested += flow.bytes
        if self.lb_detector is not None:
            self.lb_detector.observe(flow)

    def ingest_many(self, flows: "Iterable[FlowRecord] | FlowBatch") -> int:
        """Ingest an iterable (or :class:`FlowBatch`) one flow at a time."""
        if isinstance(flows, FlowBatch):
            flows = flows.iter_flows()
        count = 0
        for flow in flows:
            self.ingest(flow)
            count += 1
        return count

    def _lookup(self, root: _Node, masked: int) -> _Node:
        node = root
        bits = root.prefix.bits
        while node.left is not None:
            bit_index = bits - node.prefix.masklen - 1
            if (masked >> bit_index) & 1:
                assert node.right is not None  # internal: both children
                node = node.right
            else:
                node = node.left
        return node

    # ------------------------------------------------------------------ stage 2

    def sweep(self, now: float) -> SweepReport:
        """Algorithm 1 lines 5-19, as one full walk per address family."""
        report = SweepReport(timestamp=now)
        for version, root in self.roots.items():
            self._sweep_tree(version, root, now, report)
            report.leaves_by_version[version] = sum(1 for __ in _leaves(root))
        report.leaves = sum(report.leaves_by_version.values())
        report.classified = sum(
            1
            for root in self.roots.values()
            for leaf in _leaves(root)
            if leaf.cls is not None
        )
        self.last_sweep_at = now
        return report

    def _sweep_tree(
        self, version: int, root: _Node, now: float, report: SweepReport
    ) -> None:
        params = self.params
        cidr_max = params.cidr_max(version)
        cutoff = now - params.e
        # Snapshot the visit list first: children created by a split are
        # not revisited within the same sweep (the engine behaves the
        # same — one split level per sweep).
        for leaf in list(_leaves(root)):
            if leaf.dead or leaf.left is not None:
                continue
            report.visited += 1
            if leaf.cls is None:
                stale = [
                    ip for ip, seen in leaf.last_seen.items() if seen < cutoff
                ]
                for ip in stale:
                    del leaf.per_ip[ip]
                    del leaf.last_seen[ip]
                report.expired_sources += len(stale)
                if leaf.per_ip:
                    self._handle_unclassified(
                        version, leaf, now, cidr_max, report
                    )
            else:
                self._handle_classified(leaf, now, report)
        report.joins += self._join_pass(version, root)
        report.prunes += self._prune(root)

    def _handle_unclassified(
        self,
        version: int,
        leaf: _Node,
        now: float,
        cidr_max: int,
        report: SweepReport,
    ) -> None:
        params = self.params
        masklen = leaf.prefix.masklen
        total = sum(
            weight
            for by_ingress in leaf.per_ip.values()
            for weight in by_ingress.values()
        )
        if total < params.n_cidr(masklen, version):
            return  # line 8: not enough samples yet
        totals = self._ingress_totals(leaf)
        found = self._dominant(totals)
        if found is None:
            return
        ingress, share, __ = found
        if share >= params.q:
            # line 10: classify; per-source detail is discarded.
            leaf.cls = _Classified(
                ingress=ingress,
                counters=self._ingress_totals(leaf),
                last_seen=max(leaf.last_seen.values()),
                classified_at=now,
            )
            leaf.per_ip = {}
            leaf.last_seen = {}
            report.classifications += 1
            self._cidrmax_failures.pop(leaf.prefix, None)
        elif masklen < cidr_max:
            self._split(leaf)  # line 13
            report.splits += 1
        elif self.lb_detector is not None:
            # line 15: cidr_max reached without dominance; §5.8 hands
            # persistently failing ranges to the load-balance detector.
            failures = self._cidrmax_failures.get(leaf.prefix, 0) + 1
            self._cidrmax_failures[leaf.prefix] = failures
            if failures >= self.lb_patience:
                self.lb_detector.watch(leaf.prefix)

    def _handle_classified(
        self, leaf: _Node, now: float, report: SweepReport
    ) -> None:
        params = self.params
        cls = leaf.cls
        assert cls is not None
        age = now - cls.last_seen
        if age > params.t:
            # Table 1: decay is the fraction *removed* per idle sweep.
            keep = max(0.0, 1.0 - params.decay(age, params.t))
            cls.counters = {
                ingress: weight * keep
                for ingress, weight in cls.counters.items()
                if weight * keep >= _DECAY_FLOOR
            }
            report.decayed_ranges += 1
            if sum(cls.counters.values()) < params.drop_threshold:
                self._drop(leaf, report)  # line 19
                return
        share = self._confidence(cls, _members_of(cls.ingress))
        if share < params.q:
            self._drop(leaf, report)  # line 19

    def _drop(self, leaf: _Node, report: SweepReport) -> None:
        leaf.cls = None
        report.drops += 1
        self._cidrmax_failures.pop(leaf.prefix, None)

    def _split(self, leaf: _Node) -> None:
        """Split a leaf, redistributing sources in insertion order."""
        left_prefix, right_prefix = leaf.prefix.children()
        left = _Node(left_prefix, parent=leaf)
        right = _Node(right_prefix, parent=leaf)
        boundary = right_prefix.value
        for masked, by_ingress in leaf.per_ip.items():
            child = right if masked >= boundary else left
            child.per_ip[masked] = by_ingress
            child.last_seen[masked] = leaf.last_seen[masked]
        leaf.left = left
        leaf.right = right
        leaf.per_ip = {}
        leaf.last_seen = {}

    def _join_pass(self, version: int, root: _Node) -> int:
        """§3.2: join sibling ranges classified to the same ingress when
        the merged range meets its own (larger) n_cidr threshold."""
        params = self.params
        joins = 0
        classified = sorted(
            (leaf for leaf in _leaves(root) if leaf.cls is not None),
            key=lambda node: node.prefix.value,
        )
        for leaf in classified:
            if leaf.dead:
                continue  # merged away by an earlier candidate's cascade
            parent = leaf.parent
            while parent is not None:
                left, right = parent.left, parent.right
                if left is None or right is None:
                    break
                if not (left.is_leaf and right.is_leaf):
                    break
                if left.cls is None or right.cls is None:
                    break
                if left.cls.ingress != right.cls.ingress:
                    break
                combined = (
                    sum(left.cls.counters.values())
                    + sum(right.cls.counters.values())
                )
                if combined < params.n_cidr(parent.prefix.masklen, version):
                    break
                self._cidrmax_failures.pop(left.prefix, None)
                self._cidrmax_failures.pop(right.prefix, None)
                # merge: counters add (left's insertion order first, then
                # right's new keys — exactly ClassifiedState.merged_with)
                counters = dict(left.cls.counters)
                for ingress, weight in right.cls.counters.items():
                    counters[ingress] = counters.get(ingress, 0.0) + weight
                parent.cls = _Classified(
                    ingress=left.cls.ingress,
                    counters=counters,
                    last_seen=max(left.cls.last_seen, right.cls.last_seen),
                    classified_at=min(
                        left.cls.classified_at, right.cls.classified_at
                    ),
                )
                left.dead = right.dead = True
                parent.left = parent.right = None
                joins += 1
                parent = parent.parent
        return joins

    def _prune(self, root: _Node) -> int:
        """Collapse sibling pairs of empty unclassified leaves (postorder
        full walk, so collapses cascade bottom-up in one pass)."""
        collapsed = 0
        stack: list[tuple[_Node, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node.left is None:
                continue
            if not expanded:
                stack.append((node, True))
                right = node.right
                assert right is not None  # internal nodes have both children
                stack.append((right, False))
                stack.append((node.left, False))
                continue
            left, right = node.left, node.right
            if left is None or right is None:
                continue
            if not (left.is_leaf and right.is_leaf):
                continue
            if _is_empty_unclassified(left) and _is_empty_unclassified(right):
                for child in (left, right):
                    child.dead = True
                    self._cidrmax_failures.pop(child.prefix, None)
                node.left = node.right = None
                node.cls = None
                node.per_ip = {}
                node.last_seen = {}
                collapsed += 1
        return collapsed

    # ------------------------------------------------------------------ decisions

    def _ingress_totals(self, leaf: _Node) -> dict[IngressPoint, float]:
        """Aggregate weights per ingress, in stream first-seen order."""
        totals: dict[IngressPoint, float] = {}
        for by_ingress in leaf.per_ip.values():
            for ingress, weight in by_ingress.items():
                totals[ingress] = totals.get(ingress, 0.0) + weight
        return totals

    def _dominant(
        self, totals: dict[IngressPoint, float]
    ) -> tuple[IngressPoint, float, tuple[IngressPoint, ...]] | None:
        """The most prevalent logical ingress, §3.2 bundling included.

        Interfaces of one router each holding at least ``bundle_min_share``
        of the router's subtotal form a single logical bundle; the winner
        is the heaviest candidate (ties broken by ingress ordering, as in
        :func:`repro.core.bundles.dominant_ingress`).
        """
        params = self.params
        if not totals:
            return None
        grand_total = sum(totals.values())
        if grand_total <= 0.0:
            return None
        candidates: dict[IngressPoint, tuple[float, tuple[IngressPoint, ...]]]
        if params.enable_bundles:
            candidates = {}
            by_router: dict[str, list[tuple[IngressPoint, float]]] = {}
            for ingress, weight in totals.items():
                by_router.setdefault(ingress.router, []).append((ingress, weight))
            for router, members in by_router.items():
                subtotal = sum(weight for __, weight in members)
                if subtotal <= 0.0:
                    continue
                major = [
                    (ingress, weight)
                    for ingress, weight in members
                    if weight / subtotal >= params.bundle_min_share
                ]
                if len(major) >= 2:
                    names = sorted(
                        ingress.interface for ingress, __ in major
                    )
                    bundle = IngressPoint(router, "+".join(names))
                    candidates[bundle] = (
                        sum(weight for __, weight in major),
                        tuple(ingress for ingress, __ in major),
                    )
                    minor = [
                        (ingress, weight)
                        for ingress, weight in members
                        if weight / subtotal < params.bundle_min_share
                    ]
                else:
                    minor = members
                for ingress, weight in minor:
                    candidates[ingress] = (weight, (ingress,))
        else:
            candidates = {
                ingress: (weight, (ingress,))
                for ingress, weight in totals.items()
            }
        winner, (weight, members) = max(
            candidates.items(), key=lambda item: (item[1][0], item[0])
        )
        return winner, weight / grand_total, members

    def _confidence(
        self, cls: _Classified, members: tuple[IngressPoint, ...]
    ) -> float:
        """The paper's ``s_ingress``: winner share of all samples."""
        total = sum(cls.counters.values())
        if total <= 0.0:
            return 0.0
        matched = sum(cls.counters.get(member, 0.0) for member in members)
        return matched / total

    # ------------------------------------------------------------------ output

    def snapshot(
        self, now: float, include_unclassified: bool = False
    ) -> list[IPDRecord]:
        """The Table-3 raw output, identical to the engine's snapshot."""
        params = self.params
        records: list[IPDRecord] = []
        for version, root in self.roots.items():
            for leaf in _leaves(root):
                n_cidr = params.n_cidr(leaf.prefix.masklen, version)
                if leaf.cls is not None:
                    cls = leaf.cls
                    records.append(
                        IPDRecord(
                            timestamp=now,
                            range=leaf.prefix,
                            ingress=cls.ingress,
                            s_ingress=self._confidence(
                                cls, _members_of(cls.ingress)
                            ),
                            s_ipcount=sum(cls.counters.values()),
                            n_cidr=n_cidr,
                            candidates=_sorted_candidates(cls.counters),
                            classified=True,
                        )
                    )
                elif include_unclassified and leaf.per_ip:
                    totals = self._ingress_totals(leaf)
                    found = self._dominant(totals)
                    if found is None:
                        continue
                    ingress, share, __ = found
                    records.append(
                        IPDRecord(
                            timestamp=now,
                            range=leaf.prefix,
                            ingress=ingress,
                            s_ingress=share,
                            s_ipcount=sum(totals.values()),
                            n_cidr=n_cidr,
                            candidates=_sorted_candidates(totals),
                            classified=False,
                        )
                    )
        records.sort(key=lambda record: (record.version, record.range.value))
        return records

    # ------------------------------------------------------------------ metrics

    def state_size(self) -> int:
        """Tracked (source, ingress) cells + classified counter cells."""
        size = 0
        for root in self.roots.values():
            for leaf in _leaves(root):
                if leaf.cls is not None:
                    size += len(leaf.cls.counters)
                else:
                    size += sum(
                        len(by_ingress) for by_ingress in leaf.per_ip.values()
                    )
        return size

    def leaf_count(self) -> int:
        return sum(
            1 for root in self.roots.values() for __ in _leaves(root)
        )


def _members_of(ingress: IngressPoint) -> tuple[IngressPoint, ...]:
    return tuple(
        IngressPoint(ingress.router, name) for name in ingress.interfaces()
    )


def _is_empty_unclassified(node: _Node) -> bool:
    return node.cls is None and not node.per_ip


def _sorted_candidates(
    counters: dict[IngressPoint, float]
) -> tuple[tuple[IngressPoint, float], ...]:
    return tuple(
        sorted(counters.items(), key=lambda item: (-item[1], str(item[0])))
    )


# ---------------------------------------------------------------- comparisons


def compare_reports(
    engine_report: SweepReport, oracle_report: SweepReport
) -> list[tuple[str, object, object]]:
    """Mismatched :data:`ORACLE_REPORT_FIELDS` as (field, engine, oracle)."""
    return [
        (name, getattr(engine_report, name), getattr(oracle_report, name))
        for name in ORACLE_REPORT_FIELDS
        if getattr(engine_report, name) != getattr(oracle_report, name)
    ]


def assert_engines_equivalent(
    engine: object,
    oracle: ReferenceIPD,
    now: float,
    include_unclassified: bool = True,
) -> None:
    """Full-state equivalence: snapshots, sizes, counters, §5.8 failures.

    *engine* is anything with the IPD surface (:class:`~repro.core
    .algorithm.IPD` or a merged :class:`~repro.runtime.sharding
    .ShardedIPD`).
    """
    engine_records = engine.snapshot(now, include_unclassified=include_unclassified)
    oracle_records = oracle.snapshot(now, include_unclassified=include_unclassified)
    assert engine_records == oracle_records, (
        f"snapshot mismatch at t={now}: engine={engine_records!r} "
        f"oracle={oracle_records!r}"
    )
    assert engine.leaf_count() == oracle.leaf_count(), f"leaf count at t={now}"
    assert engine.state_size() == oracle.state_size(), f"state size at t={now}"
    assert engine.flows_ingested == oracle.flows_ingested
    assert engine.bytes_ingested == oracle.bytes_ingested
    engine_failures = getattr(engine, "_cidrmax_failures", None)
    if engine_failures is not None:
        assert engine_failures == oracle._cidrmax_failures, (
            f"cidr_max failure counters diverge at t={now}"
        )


def replay_reference(
    flows: Iterable[FlowRecord],
    params: IPDParams,
    snapshot_seconds: float = 300.0,
    include_unclassified: bool = True,
) -> "RunResult":
    """Replay a per-flow stream through the oracle with the pipeline's
    event grid: sweeps at ``t`` boundaries of the trace clock, snapshots
    every *snapshot_seconds*, and a closing tick for the final bucket.

    Returns a :class:`~repro.runtime.result.RunResult`, so chaos tests
    can compare a recovered pipeline run against the oracle with the
    same helpers they use between pipeline runs.
    """
    from ..runtime.result import RunResult

    oracle = ReferenceIPD(params)
    result = RunResult()
    t = params.t
    next_sweep: float | None = None
    next_snapshot: float | None = None
    for flow in flows:
        if next_sweep is None:
            next_sweep = (int(flow.timestamp // t) + 1) * t
            next_snapshot = (
                int(flow.timestamp // snapshot_seconds) + 1
            ) * snapshot_seconds
        while flow.timestamp >= next_sweep:
            result.sweeps.append(oracle.sweep(next_sweep))
            if next_snapshot is not None and next_sweep >= next_snapshot:
                result.snapshots[next_sweep] = oracle.snapshot(
                    next_sweep, include_unclassified=include_unclassified
                )
                next_snapshot += snapshot_seconds
            next_sweep += t
        oracle.ingest(flow)
        result.flows_processed += 1
    if next_sweep is not None:
        result.sweeps.append(oracle.sweep(next_sweep))
        result.snapshots[next_sweep] = oracle.snapshot(
            next_sweep, include_unclassified=include_unclassified
        )
    return result
