"""Deterministic fault injection for the runtime — the chaos harness.

A :class:`FaultPlan` is a seeded, reproducible schedule of failures the
runtime consults at its named injection sites, each wired behind a
no-op hook (an attribute that defaults to ``None`` and costs one
identity check when unset):

====================  ===================================================
site                  hook location
====================  ===================================================
``worker_crash``      executor ``tick_begin`` (all kinds) and, for a
                      plain single-engine pipeline, ``Pipeline._tick``
``feed_drop`` /       executor ``feed`` (all kinds) — the batch is
``feed_duplicate``    swallowed or delivered twice
``shm_ring_full`` /   mp executor with ``transport="shm"`` only — the
``shm_frame_corrupt`` ring reports full so the real backpressure wait
                      loop runs, or the committed frame is corrupted
                      after its CRC so the worker's decode fails typed
``checkpoint_...``    ``CheckpointStore.save`` — the serialized bytes
                      are truncated (``checkpoint_truncate``) or
                      bit-flipped (``checkpoint_bitflip``) before disk
``sink_error``        ``Pipeline._emit`` — raises
                      :class:`InjectedSinkError` before the sinks write
``sketch_saturate``   ``Pipeline._tick`` — the engine's admission
                      sketch is forced to the saturation ceiling, so
                      the front-end must degrade to admit-everything
                      (a no-op when admission is off)
====================  ===================================================

Faults are **one-shot**: each fires at the Nth occurrence of its site
(0-based) and is then spent, so a recovery replay that passes the same
site again does not re-crash forever.

Feed faults are **crash-coupled**: dropping or duplicating a batch
silently corrupts shard state, which nothing downstream can detect — so
whenever a feed fault fires, the plan arms a worker crash at the next
tick.  Recovery then rebuilds from the last checkpoint (taken strictly
before the corruption, since checkpoints are post-sweep barriers) and
replays the clean stream, turning would-be silent divergence into an
exercised recovery path.  This is the invariant the chaos suite banks
on: every run either converges to the oracle-equivalent state or dies
with a typed, documented exception.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from ..netflow.records import FlowBatch

__all__ = ["FAULT_SITES", "Fault", "FaultPlan", "InjectedSinkError"]

FAULT_SITES = (
    "worker_crash",
    "feed_drop",
    "feed_duplicate",
    "shm_ring_full",
    "shm_frame_corrupt",
    "checkpoint_truncate",
    "checkpoint_bitflip",
    "sink_error",
    "sketch_saturate",
)

#: upper bound on the feed occurrence index generate() schedules faults
#: at; small traces make fewer feeds, in which case the fault simply
#: never fires (a legal, if boring, plan)
_MAX_FEED_INDEX = 24


class InjectedSinkError(RuntimeError):
    """Raised by the ``sink_error`` site in place of a real I/O failure."""


@dataclass(frozen=True)
class Fault:
    """One scheduled failure: fire at the *at*-th occurrence of *site*.

    ``arg`` parameterizes the failure: the worker slot to kill for
    ``worker_crash`` under an mp executor, the bit index to flip for
    ``checkpoint_bitflip``.
    """

    site: str
    at: int
    arg: int = 0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of {FAULT_SITES}"
            )
        if self.at < 0:
            raise ValueError("fault occurrence index must be >= 0")


class FaultPlan:
    """A deterministic schedule of faults, consulted by the runtime hooks.

    Build one explicitly from :class:`Fault` entries, or draw a random
    (but fully seed-determined) plan with :meth:`generate`.  Attach it
    via ``Pipeline(..., fault_hook=plan)`` and/or
    ``CheckpointStore(..., fault_hook=plan)``; unattached sites simply
    never fire.

    The plan records every fault that actually fired in :attr:`fired`
    (as ``(site, occurrence)`` pairs, in firing order) so a test can
    decide post-hoc what outcome the run was required to have.
    """

    def __init__(self, faults: "tuple[Fault, ...] | list[Fault]" = ()) -> None:
        self.faults = tuple(faults)
        self._pending: dict[str, dict[int, Fault]] = {}
        for fault in self.faults:
            slot = self._pending.setdefault(fault.site, {})
            if fault.at in slot:
                raise ValueError(
                    f"duplicate fault at {fault.site}[{fault.at}]"
                )
            slot[fault.at] = fault
        self._counters: dict[str, int] = {}
        #: set after a feed fault fires: the next tick must crash so the
        #: corrupted shard state is thrown away and replayed
        self._crash_armed = False
        self.fired: list[tuple[str, int]] = []

    @classmethod
    def generate(
        cls, seed: int, ticks: int, max_faults: int = 3
    ) -> "FaultPlan":
        """A random plan for a run of roughly *ticks* sweep ticks.

        Fully determined by *seed*; the same seed always yields the same
        plan, so any chaos failure reproduces from its logged seed.
        """
        rng = random.Random(seed)
        faults: list[Fault] = []
        used: set[tuple[str, int]] = set()
        for __ in range(rng.randint(1, max_faults)):
            site = rng.choice(FAULT_SITES)
            if site == "worker_crash":
                at = rng.randint(1, max(1, ticks - 1))
            elif site.startswith(("feed_", "shm_")):
                at = rng.randrange(_MAX_FEED_INDEX)
            else:
                at = rng.randrange(max(1, ticks))
            if (site, at) in used:
                continue
            used.add((site, at))
            faults.append(Fault(site=site, at=at, arg=rng.randrange(64)))
        return cls(faults)

    def describe(self) -> str:
        return " ".join(
            f"{fault.site}@{fault.at}" for fault in self.faults
        ) or "(no faults)"

    # ------------------------------------------------------------------ sites

    def _take(self, site: str) -> Optional[Fault]:
        """Advance *site*'s occurrence counter; pop a due one-shot fault."""
        occurrence = self._counters.get(site, 0)
        self._counters[site] = occurrence + 1
        fault = self._pending.get(site, {}).pop(occurrence, None)
        if fault is not None:
            self.fired.append((site, occurrence))
        return fault

    def before_tick(self, executor: object, now: float) -> None:
        """``worker_crash`` site: called by executors at ``tick_begin``
        (and by the pipeline itself for an executor-less plain engine).

        Under an mp executor the selected worker process is killed — the
        crash then surfaces naturally as the executor's own
        :class:`~repro.runtime.executors.WorkerCrashError` when the tick
        reply is collected.  Everywhere else the error is raised
        directly; either way the pipeline's recovery path sees the one
        documented exception type.
        """
        fault = self._take("worker_crash")
        crash = fault is not None or self._crash_armed
        if not crash:
            return
        self._crash_armed = False
        processes = getattr(executor, "_processes", None)
        if processes:
            slot = (fault.arg if fault is not None else 0) % len(processes)
            process = processes[slot]
            process.kill()
            process.join()
            return
        from ..runtime.executors import WorkerCrashError

        raise WorkerCrashError(
            f"injected worker crash at tick {now} ({self.describe()})"
        )

    def before_sweep(self, engine: object, now: float) -> None:
        """``sketch_saturate`` site: called by ``Pipeline._tick`` with
        the engine (plain or sharded) just before its sweep.

        Saturation is a *degradation*, not a failure: the admission
        front-end must fall back to admit-everything, so the run still
        converges bit-exactly to the oracle — which is exactly what the
        chaos suite asserts.  Engines without admission ignore it.
        """
        fault = self._take("sketch_saturate")
        if fault is None:
            return
        saturate = getattr(engine, "saturate_admission", None)
        if saturate is not None:
            saturate()

    def on_feed(self, index: int, batch: "FlowBatch") -> Optional[str]:
        """``feed_drop`` / ``feed_duplicate`` site: called by executors
        per fed batch; returns ``"drop"``, ``"duplicate"`` or ``None``.

        Firing either arms a worker crash at the next tick (see module
        docstring) so the corruption cannot survive to the output.
        """
        drop = self._take("feed_drop")
        duplicate = self._take("feed_duplicate")
        if drop is not None:
            self._crash_armed = True
            return "drop"
        if duplicate is not None:
            self._crash_armed = True
            return "duplicate"
        return None

    def on_shm_feed(self, slot: int) -> Optional[str]:
        """``shm_ring_full`` / ``shm_frame_corrupt`` site: consulted by
        the mp executor's shm feed path per encoded frame.

        A stall drives the ring's real backpressure wait loop and is
        otherwise harmless — the run must still converge bit-exactly.
        A corrupt frame kills the worker (its decode raises the typed
        :class:`~repro.runtime.shmring.ShmFrameError`), which surfaces
        as a ``WorkerCrashError`` at the next barrier and exercises the
        same checkpoint-recovery path as ``worker_crash``; no explicit
        crash arming is needed.
        """
        corrupt = self._take("shm_frame_corrupt")
        stall = self._take("shm_ring_full")
        if corrupt is not None:
            return "corrupt"
        if stall is not None:
            return "stall"
        return None

    def on_checkpoint_save(self, when: float, data: bytes) -> bytes:
        """``checkpoint_truncate`` / ``checkpoint_bitflip`` site: called
        by :meth:`CheckpointStore.save` with the serialized bytes."""
        truncate = self._take("checkpoint_truncate")
        bitflip = self._take("checkpoint_bitflip")
        if truncate is not None and len(data) > 1:
            data = data[: max(1, len(data) // 2)]
        if bitflip is not None and data:
            position = bitflip.arg % (len(data) * 8)
            corrupted = bytearray(data)
            corrupted[position // 8] ^= 1 << (position % 8)
            data = bytes(corrupted)
        return data

    def on_sink_emit(self, when: float) -> None:
        """``sink_error`` site: called by ``Pipeline._emit`` before the
        sinks write; raises :class:`InjectedSinkError` when due."""
        fault = self._take("sink_error")
        if fault is not None:
            raise InjectedSinkError(
                f"injected sink write error at snapshot {when}"
            )
