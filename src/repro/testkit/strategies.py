"""Shared hypothesis strategies for IPD property suites.

Every property test in the repository draws flows, traces, parameters
and shard topologies from here, so the distributions stay consistent
across suites (and tightening one tightens them all).  The strategies
are plain functions returning ``SearchStrategy`` objects; import them
directly::

    from repro.testkit import strategies as ipd_st

    @given(raw_flows=ipd_st.flow_events_list(max_size=250))
    def test_...(raw_flows): ...

``flow_events`` keeps the historical raw-tuple shape
``(src_ip, ingress_index, bucket_offset)`` used by the shard-equivalence
and algorithm-property suites; ``traces`` builds ready-to-ingest
:class:`~repro.netflow.records.FlowRecord` streams with non-decreasing
timestamps for the differential-oracle suite.
"""

from __future__ import annotations

from hypothesis import strategies as st

from ..core.iputil import IPV4
from ..core.params import IPDParams
from ..netflow.records import FlowBatch, FlowRecord
from ..topology.elements import IngressPoint

__all__ = [
    "DEFAULT_INGRESSES",
    "SMALL_SPACE_PARAMS",
    "engine_params",
    "flow_batches",
    "flow_events",
    "flow_events_list",
    "shard_counts",
    "traces",
]

#: the four-ingress topology the property suites have always used: two
#: interfaces on one router (exercises §3.2 bundling), two more routers
DEFAULT_INGRESSES = (
    IngressPoint("R1", "et0"),
    IngressPoint("R1", "et1"),
    IngressPoint("R2", "et0"),
    IngressPoint("R3", "hu0"),
)

#: thresholds scaled down so a couple hundred generated flows can drive
#: classifications, splits and joins inside a /12-bounded IPv4 trie
SMALL_SPACE_PARAMS = IPDParams(
    n_cidr_factor_v4=0.0005,
    n_cidr_factor_v6=0.0005,
    cidr_max_v4=12,
)


def flow_events(
    ingress_count: int = len(DEFAULT_INGRESSES),
    max_offset: int = 5,
    version: int = IPV4,
) -> st.SearchStrategy:
    """Raw ``(src_ip, ingress_index, bucket_offset)`` tuples.

    The offset is in 10-second steps inside a sweep bucket; the driver
    loops of the property suites add it to the current bucket start.
    """
    max_src = (1 << 32) - 1 if version == IPV4 else (1 << 128) - 1
    return st.tuples(
        st.integers(min_value=0, max_value=max_src),
        st.integers(min_value=0, max_value=ingress_count - 1),
        st.integers(min_value=0, max_value=max_offset),
    )


def flow_events_list(
    min_size: int = 0,
    max_size: int = 250,
    version: int = IPV4,
) -> st.SearchStrategy:
    """Lists of :func:`flow_events` tuples (the usual @given input)."""
    return st.lists(
        flow_events(version=version), min_size=min_size, max_size=max_size
    )


@st.composite
def traces(
    draw: st.DrawFn,
    min_buckets: int = 1,
    max_buckets: int = 8,
    max_flows_per_bucket: int = 40,
    t: float = 60.0,
    versions: tuple[int, ...] = (IPV4,),
    ingresses: tuple[IngressPoint, ...] = DEFAULT_INGRESSES,
    max_bytes: int = 1,
) -> list[FlowRecord]:
    """Time-ordered :class:`FlowRecord` streams spanning several buckets.

    Each bucket holds a sorted burst of flows with timestamps inside one
    sweep interval; bucket count, per-bucket volume, sources, families
    and byte weights are all drawn.  Suitable for feeding the engine and
    the oracle (or a Pipeline) directly.
    """
    flows: list[FlowRecord] = []
    buckets = draw(st.integers(min_value=min_buckets, max_value=max_buckets))
    for bucket in range(buckets):
        start = bucket * t
        count = draw(st.integers(min_value=0, max_value=max_flows_per_bucket))
        offsets = sorted(
            draw(
                st.lists(
                    st.floats(
                        min_value=0.0,
                        max_value=t - 1e-3,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                    min_size=count,
                    max_size=count,
                )
            )
        )
        for offset in offsets:
            version = draw(st.sampled_from(versions))
            max_src = (1 << 32) - 1 if version == IPV4 else (1 << 128) - 1
            flows.append(
                FlowRecord(
                    timestamp=start + offset,
                    src_ip=draw(st.integers(min_value=0, max_value=max_src)),
                    version=version,
                    ingress=draw(st.sampled_from(ingresses)),
                    bytes=draw(st.integers(min_value=1, max_value=max_bytes)),
                )
            )
    return flows


@st.composite
def flow_batches(
    draw: st.DrawFn,
    version: int = IPV4,
    max_rows: int = 64,
    ingresses: tuple[IngressPoint, ...] = DEFAULT_INGRESSES,
) -> FlowBatch:
    """Columnar :class:`FlowBatch` values for the wire-codec suites.

    Rows span the full address and counter ranges of the family,
    timestamps are arbitrary finite f64 values (the codec must carry
    them bit-exactly), and ``dst_ips`` mixes ``None`` with real
    addresses so the presence-bitmap path is exercised.  ``max_rows=0``
    yields only empty batches.
    """
    max_src = (1 << 32) - 1 if version == IPV4 else (1 << 128) - 1
    max_count = (1 << 64) - 1
    rows = draw(st.integers(min_value=0, max_value=max_rows))

    def column(values: st.SearchStrategy) -> list:
        return draw(st.lists(values, min_size=rows, max_size=rows))

    return FlowBatch(
        version,
        column(st.floats(allow_nan=False, allow_infinity=False, width=64)),
        column(st.integers(min_value=0, max_value=max_src)),
        column(st.sampled_from(ingresses)),
        column(st.integers(min_value=0, max_value=max_count)),
        column(st.integers(min_value=0, max_value=max_count)),
        column(st.none() | st.integers(min_value=0, max_value=max_src)),
    )


def engine_params(
    max_cidr_v4: int = 12,
    include_byte_counting: bool = True,
) -> st.SearchStrategy:
    """Small-space :class:`IPDParams` variations for differential runs.

    Keeps ``n_cidr`` factors tiny (so generated traces can classify) and
    bounds the IPv4 trie depth; draws the dominance threshold ``q``,
    bundling on/off and flow-vs-byte weighting.
    """
    return st.builds(
        IPDParams,
        n_cidr_factor_v4=st.sampled_from([0.0005, 0.005, 0.05]),
        n_cidr_factor_v6=st.just(0.0005),
        cidr_max_v4=st.integers(min_value=4, max_value=max_cidr_v4),
        q=st.sampled_from([0.6, 0.8, 0.95]),
        enable_bundles=st.booleans(),
        count_bytes=(
            st.booleans() if include_byte_counting else st.just(False)
        ),
    )


def shard_counts(max_depth: int = 8) -> st.SearchStrategy:
    """Legal ShardedIPD shard counts: powers of two up to 2^max_depth."""
    return st.sampled_from([1 << depth for depth in range(max_depth + 1)])
