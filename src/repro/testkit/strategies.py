"""Shared hypothesis strategies for IPD property suites.

Every property test in the repository draws flows, traces, parameters
and shard topologies from here, so the distributions stay consistent
across suites (and tightening one tightens them all).  The strategies
are plain functions returning ``SearchStrategy`` objects; import them
directly::

    from repro.testkit import strategies as ipd_st

    @given(raw_flows=ipd_st.flow_events_list(max_size=250))
    def test_...(raw_flows): ...

``flow_events`` keeps the historical raw-tuple shape
``(src_ip, ingress_index, bucket_offset)`` used by the shard-equivalence
and algorithm-property suites; ``traces`` builds ready-to-ingest
:class:`~repro.netflow.records.FlowRecord` streams with non-decreasing
timestamps for the differential-oracle suite.
"""

from __future__ import annotations

from hypothesis import strategies as st

from ..core.iputil import IPV4
from ..core.params import IPDParams
from ..netflow.records import FlowBatch, FlowRecord
from ..topology.elements import IngressPoint

__all__ = [
    "DEFAULT_INGRESSES",
    "SMALL_SPACE_PARAMS",
    "adversarial_traces",
    "clipped_elephants",
    "engine_params",
    "flap_schedules",
    "flood_bursts",
    "flow_batches",
    "flow_events",
    "flow_events_list",
    "shard_counts",
    "traces",
]

#: the four-ingress topology the property suites have always used: two
#: interfaces on one router (exercises §3.2 bundling), two more routers
DEFAULT_INGRESSES = (
    IngressPoint("R1", "et0"),
    IngressPoint("R1", "et1"),
    IngressPoint("R2", "et0"),
    IngressPoint("R3", "hu0"),
)

#: thresholds scaled down so a couple hundred generated flows can drive
#: classifications, splits and joins inside a /12-bounded IPv4 trie
SMALL_SPACE_PARAMS = IPDParams(
    n_cidr_factor_v4=0.0005,
    n_cidr_factor_v6=0.0005,
    cidr_max_v4=12,
)


def flow_events(
    ingress_count: int = len(DEFAULT_INGRESSES),
    max_offset: int = 5,
    version: int = IPV4,
) -> st.SearchStrategy:
    """Raw ``(src_ip, ingress_index, bucket_offset)`` tuples.

    The offset is in 10-second steps inside a sweep bucket; the driver
    loops of the property suites add it to the current bucket start.
    """
    max_src = (1 << 32) - 1 if version == IPV4 else (1 << 128) - 1
    return st.tuples(
        st.integers(min_value=0, max_value=max_src),
        st.integers(min_value=0, max_value=ingress_count - 1),
        st.integers(min_value=0, max_value=max_offset),
    )


def flow_events_list(
    min_size: int = 0,
    max_size: int = 250,
    version: int = IPV4,
) -> st.SearchStrategy:
    """Lists of :func:`flow_events` tuples (the usual @given input)."""
    return st.lists(
        flow_events(version=version), min_size=min_size, max_size=max_size
    )


@st.composite
def traces(
    draw: st.DrawFn,
    min_buckets: int = 1,
    max_buckets: int = 8,
    max_flows_per_bucket: int = 40,
    t: float = 60.0,
    versions: tuple[int, ...] = (IPV4,),
    ingresses: tuple[IngressPoint, ...] = DEFAULT_INGRESSES,
    max_bytes: int = 1,
) -> list[FlowRecord]:
    """Time-ordered :class:`FlowRecord` streams spanning several buckets.

    Each bucket holds a sorted burst of flows with timestamps inside one
    sweep interval; bucket count, per-bucket volume, sources, families
    and byte weights are all drawn.  Suitable for feeding the engine and
    the oracle (or a Pipeline) directly.
    """
    flows: list[FlowRecord] = []
    buckets = draw(st.integers(min_value=min_buckets, max_value=max_buckets))
    for bucket in range(buckets):
        start = bucket * t
        count = draw(st.integers(min_value=0, max_value=max_flows_per_bucket))
        offsets = sorted(
            draw(
                st.lists(
                    st.floats(
                        min_value=0.0,
                        max_value=t - 1e-3,
                        allow_nan=False,
                        allow_infinity=False,
                    ),
                    min_size=count,
                    max_size=count,
                )
            )
        )
        for offset in offsets:
            version = draw(st.sampled_from(versions))
            max_src = (1 << 32) - 1 if version == IPV4 else (1 << 128) - 1
            flows.append(
                FlowRecord(
                    timestamp=start + offset,
                    src_ip=draw(st.integers(min_value=0, max_value=max_src)),
                    version=version,
                    ingress=draw(st.sampled_from(ingresses)),
                    bytes=draw(st.integers(min_value=1, max_value=max_bytes)),
                )
            )
    return flows


@st.composite
def flow_batches(
    draw: st.DrawFn,
    version: int = IPV4,
    max_rows: int = 64,
    ingresses: tuple[IngressPoint, ...] = DEFAULT_INGRESSES,
) -> FlowBatch:
    """Columnar :class:`FlowBatch` values for the wire-codec suites.

    Rows span the full address and counter ranges of the family,
    timestamps are arbitrary finite f64 values (the codec must carry
    them bit-exactly), and ``dst_ips`` mixes ``None`` with real
    addresses so the presence-bitmap path is exercised.  ``max_rows=0``
    yields only empty batches.
    """
    max_src = (1 << 32) - 1 if version == IPV4 else (1 << 128) - 1
    max_count = (1 << 64) - 1
    rows = draw(st.integers(min_value=0, max_value=max_rows))

    def column(values: st.SearchStrategy) -> list:
        return draw(st.lists(values, min_size=rows, max_size=rows))

    return FlowBatch(
        version,
        column(st.floats(allow_nan=False, allow_infinity=False, width=64)),
        column(st.integers(min_value=0, max_value=max_src)),
        column(st.sampled_from(ingresses)),
        column(st.integers(min_value=0, max_value=max_count)),
        column(st.integers(min_value=0, max_value=max_count)),
        column(st.none() | st.integers(min_value=0, max_value=max_src)),
    )


@st.composite
def flood_bursts(
    draw: st.DrawFn,
    max_buckets: int = 6,
    max_benign_per_bucket: int = 10,
    max_flood_sources: int = 120,
    t: float = 60.0,
    ingresses: tuple[IngressPoint, ...] = DEFAULT_INGRESSES,
) -> list[FlowRecord]:
    """Benign elephants plus a spoofed-source burst in the middle buckets.

    The benign sub-stream repeats a handful of sources at stable
    ingresses; the burst sprays drawn-distinct sources (each seen once,
    the shape admission exists for) at one or two attacker ingresses.
    Sizes stay small enough for the paper-literal oracle to keep up.
    """
    buckets = draw(st.integers(min_value=2, max_value=max_buckets))
    benign_sources = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 32) - 1),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    benign_ingress = {
        src: draw(st.sampled_from(ingresses)) for src in benign_sources
    }
    flood_ingresses = draw(
        st.lists(st.sampled_from(ingresses), min_size=1, max_size=2, unique=True)
    )
    burst_bucket = draw(st.integers(min_value=1, max_value=buckets - 1))
    flood_sources = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 32) - 1),
            min_size=1,
            max_size=max_flood_sources,
            unique=True,
        )
    )
    flows: list[FlowRecord] = []
    for bucket in range(buckets):
        start = bucket * t
        count = draw(
            st.integers(min_value=0, max_value=max_benign_per_bucket)
        )
        for index in range(count):
            src = draw(st.sampled_from(benign_sources))
            flows.append(
                FlowRecord(
                    timestamp=start + index * (t / (max_benign_per_bucket + 1)),
                    src_ip=src,
                    version=IPV4,
                    ingress=benign_ingress[src],
                    bytes=draw(st.integers(min_value=1, max_value=1500)),
                )
            )
        if bucket == burst_bucket:
            step = t / (len(flood_sources) + 1)
            for index, src in enumerate(flood_sources):
                flows.append(
                    FlowRecord(
                        timestamp=start + index * step,
                        src_ip=src,
                        version=IPV4,
                        ingress=draw(st.sampled_from(flood_ingresses)),
                        bytes=1,
                    )
                )
    flows.sort(key=lambda flow: flow.timestamp)
    return flows


@st.composite
def clipped_elephants(
    draw: st.DrawFn,
    max_buckets: int = 8,
    max_flows_per_bucket: int = 12,
    t: float = 60.0,
    ingresses: tuple[IngressPoint, ...] = DEFAULT_INGRESSES,
) -> list[FlowRecord]:
    """Elephant streams whose byte weights collapse inside a clip window.

    Models the visible effect of a token-bucket policer: the flow *count*
    survives, the *byte* counters drop to the policed residue for a span
    of buckets, then recover.  Exercises byte-weighted counting and decay
    against a mid-trace regime change.
    """
    buckets = draw(st.integers(min_value=3, max_value=max_buckets))
    clip_start = draw(st.integers(min_value=1, max_value=buckets - 2))
    clip_len = draw(st.integers(min_value=1, max_value=buckets - clip_start - 1))
    sources = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 32) - 1),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    source_ingress = {
        src: draw(st.sampled_from(ingresses)) for src in sources
    }
    heavy = draw(st.integers(min_value=10_000, max_value=1_000_000))
    residue = draw(st.integers(min_value=1, max_value=100))
    flows: list[FlowRecord] = []
    for bucket in range(buckets):
        start = bucket * t
        clipped = clip_start <= bucket < clip_start + clip_len
        count = draw(st.integers(min_value=1, max_value=max_flows_per_bucket))
        for index in range(count):
            src = draw(st.sampled_from(sources))
            flows.append(
                FlowRecord(
                    timestamp=start + index * (t / (max_flows_per_bucket + 1)),
                    src_ip=src,
                    version=IPV4,
                    ingress=source_ingress[src],
                    bytes=residue if clipped else heavy,
                )
            )
    return flows


@st.composite
def flap_schedules(
    draw: st.DrawFn,
    max_buckets: int = 10,
    max_flows_per_bucket: int = 8,
    t: float = 60.0,
    ingresses: tuple[IngressPoint, ...] = DEFAULT_INGRESSES,
) -> list[FlowRecord]:
    """One prefix whose ingress oscillates with a drawn dwell time.

    All sources share a drawn high-bit prefix; the serving ingress
    rotates through a drawn pair every ``dwell`` buckets (dwell 1 is a
    storm faster than ``t``).  Probes the decay function's stability
    under path churn without any generator machinery.
    """
    buckets = draw(st.integers(min_value=4, max_value=max_buckets))
    dwell = draw(st.integers(min_value=1, max_value=3))
    masklen = draw(st.integers(min_value=8, max_value=20))
    base = draw(
        st.integers(min_value=0, max_value=(1 << 32) - 1)
    ) & ~((1 << (32 - masklen)) - 1)
    span = 1 << (32 - masklen)
    pair = draw(
        st.lists(st.sampled_from(ingresses), min_size=2, max_size=2, unique=True)
    )
    flows: list[FlowRecord] = []
    for bucket in range(buckets):
        start = bucket * t
        ingress = pair[(bucket // dwell) % len(pair)]
        count = draw(st.integers(min_value=1, max_value=max_flows_per_bucket))
        for index in range(count):
            flows.append(
                FlowRecord(
                    timestamp=start + index * (t / (max_flows_per_bucket + 1)),
                    src_ip=base + draw(st.integers(min_value=0, max_value=span - 1)),
                    version=IPV4,
                    ingress=ingress,
                    bytes=draw(st.integers(min_value=1, max_value=1500)),
                )
            )
    return flows


def adversarial_traces(
    t: float = 60.0,
    ingresses: tuple[IngressPoint, ...] = DEFAULT_INGRESSES,
) -> st.SearchStrategy:
    """Any of the three adversarial trace families, equally weighted.

    The differential suite feeds these to the optimized engines and the
    paper-literal oracle: hostile shapes must not change a single
    decision relative to the reference semantics.
    """
    return st.one_of(
        flood_bursts(t=t, ingresses=ingresses),
        clipped_elephants(t=t, ingresses=ingresses),
        flap_schedules(t=t, ingresses=ingresses),
    )


def engine_params(
    max_cidr_v4: int = 12,
    include_byte_counting: bool = True,
) -> st.SearchStrategy:
    """Small-space :class:`IPDParams` variations for differential runs.

    Keeps ``n_cidr`` factors tiny (so generated traces can classify) and
    bounds the IPv4 trie depth; draws the dominance threshold ``q``,
    bundling on/off and flow-vs-byte weighting.
    """
    return st.builds(
        IPDParams,
        n_cidr_factor_v4=st.sampled_from([0.0005, 0.005, 0.05]),
        n_cidr_factor_v6=st.just(0.0005),
        cidr_max_v4=st.integers(min_value=4, max_value=max_cidr_v4),
        q=st.sampled_from([0.6, 0.8, 0.95]),
        enable_bundles=st.booleans(),
        count_bytes=(
            st.booleans() if include_byte_counting else st.just(False)
        ),
    )


def shard_counts(max_depth: int = 8) -> st.SearchStrategy:
    """Legal ShardedIPD shard counts: powers of two up to 2^max_depth."""
    return st.sampled_from([1 << depth for depth in range(max_depth + 1)])
