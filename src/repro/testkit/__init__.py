"""Correctness testkit: an executable specification of the system.

Three independent pieces, all deliberately *outside* the production
code paths they check:

* :mod:`repro.testkit.oracle` — :class:`ReferenceIPD`, a naive,
  dict-based, paper-literal implementation of IPD Stage 1/2 used as a
  differential oracle against the optimized
  :class:`~repro.core.algorithm.IPD`.
* :mod:`repro.testkit.strategies` — shared hypothesis strategies for
  flows, traces, parameters and shard counts, so every property suite
  draws from the same distributions.
* :mod:`repro.testkit.faults` — :class:`FaultPlan`, a deterministic
  seeded schedule of fault injections consulted by no-op hooks in the
  runtime (executors, checkpoint store, pipeline sinks).
* :mod:`repro.testkit.traces` — the canonical deterministic fixture
  workloads (fig05, dualstack) with their test-scale parameters.

The package ships inside ``repro`` (not under ``tests/``) so downstream
users extending the engine can reuse the oracle and the fault harness
against their own changes.
"""

from .faults import Fault, FaultPlan, InjectedSinkError
from .oracle import ReferenceIPD, assert_engines_equivalent, compare_reports
from .traces import (
    DUALSTACK_PARAMS,
    FIG05_PARAMS,
    dualstack_trace,
    fig05_trace,
)

__all__ = [
    "DUALSTACK_PARAMS",
    "FIG05_PARAMS",
    "Fault",
    "FaultPlan",
    "InjectedSinkError",
    "ReferenceIPD",
    "assert_engines_equivalent",
    "compare_reports",
    "dualstack_trace",
    "fig05_trace",
]
