"""The BGP symmetry baseline — the practice §5.5 debunks.

"Inferring ingress points is in practice sometimes simplified by taking
easy to obtain BGP feeds and assuming path symmetry."  This baseline
does exactly that: for a source address, it predicts that traffic comes
in where the ISP would send traffic out — the best route's next-hop
router.  BGP knows nothing about interfaces, so the prediction is
router-granular at best; the evaluation compares at router level, which
is *generous* to the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..bgp.rib import BGPTable
from ..netflow.records import FlowRecord

__all__ = ["BGPIngressPredictor", "BaselineAccuracy", "evaluate_bgp_baseline"]


@dataclass
class BaselineAccuracy:
    """Router-level accuracy of a baseline predictor."""

    total: int = 0
    correct: int = 0
    unpredicted: int = 0

    @property
    def accuracy(self) -> float:
        return self.correct / self.total if self.total else 0.0


class BGPIngressPredictor:
    """Predicts the ingress router under the path-symmetry assumption."""

    def __init__(self, table: BGPTable) -> None:
        self._table = table

    def predict_router(self, src_ip: int, version: int = 4) -> Optional[str]:
        """The router BGP would egress to — assumed (wrongly) symmetric."""
        return self._table.egress_router(src_ip, version)


def evaluate_bgp_baseline(
    flows: Iterable[FlowRecord], table: BGPTable
) -> BaselineAccuracy:
    """Score the symmetry assumption against ground-truth flows."""
    predictor = BGPIngressPredictor(table)
    result = BaselineAccuracy()
    for flow in flows:
        result.total += 1
        predicted = predictor.predict_router(flow.src_ip, flow.version)
        if predicted is None:
            result.unpredicted += 1
        elif predicted == flow.ingress.router:
            result.correct += 1
    return result
