"""Baselines IPD is compared against: BGP symmetry, static /24 models."""

from .bgp_baseline import BaselineAccuracy, BGPIngressPredictor, evaluate_bgp_baseline
from .static24 import StaticPrefixModel, evaluate_static_model, train_static_model

__all__ = [
    "BGPIngressPredictor",
    "BaselineAccuracy",
    "StaticPrefixModel",
    "evaluate_bgp_baseline",
    "evaluate_static_model",
    "train_static_model",
]
