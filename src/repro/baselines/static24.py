"""A static /24 partitioning baseline in the spirit of TIPSY [22].

TIPSY statistically models ingress per fixed /24 prefix from a training
period.  The paper contrasts IPD's dynamic, traffic-driven range sizes
against such static partitioning (§5.2, §6): a static model (i) cannot
represent mappings finer than /24 (CDN /28 server blocks) or coarser
aggregates, and (ii) goes stale as ingress points move, because it only
knows prefixes observed during training.

The implementation is deliberately faithful to that *style* of system,
not to TIPSY's internals: train on a window of flows, freeze a /24 ->
dominant-ingress map, predict from the frozen map.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.iputil import mask_ip
from ..netflow.records import FlowRecord
from ..topology.elements import IngressPoint
from .bgp_baseline import BaselineAccuracy

__all__ = ["StaticPrefixModel", "train_static_model", "evaluate_static_model"]


@dataclass
class StaticPrefixModel:
    """A frozen prefix -> ingress map learned from a training window."""

    masklen: int = 24
    #: masked prefix value -> predicted ingress
    mapping: dict[tuple[int, int], IngressPoint] = field(default_factory=dict)

    def predict(self, src_ip: int, version: int = 4) -> Optional[IngressPoint]:
        key = (mask_ip(src_ip, self._masklen_for(version), version), version)
        return self.mapping.get(key)

    def _masklen_for(self, version: int) -> int:
        # /24 for IPv4; the conventional /48 static granularity for IPv6.
        return self.masklen if version == 4 else 48

    def __len__(self) -> int:
        return len(self.mapping)


def train_static_model(
    training_flows: Iterable[FlowRecord],
    masklen: int = 24,
    min_samples: int = 10,
) -> StaticPrefixModel:
    """Learn the dominant ingress per fixed-size prefix."""
    model = StaticPrefixModel(masklen=masklen)
    counters: dict[tuple[int, int], Counter] = defaultdict(Counter)
    for flow in training_flows:
        effective = masklen if flow.version == 4 else 48
        key = (mask_ip(flow.src_ip, effective, flow.version), flow.version)
        counters[key][flow.ingress] += 1
    for key, counter in counters.items():
        if sum(counter.values()) < min_samples:
            continue
        ingress, __ = counter.most_common(1)[0]
        model.mapping[key] = ingress
    return model


def evaluate_static_model(
    flows: Iterable[FlowRecord],
    model: StaticPrefixModel,
    router_level: bool = False,
) -> BaselineAccuracy:
    """Score the frozen model on (typically later) flows."""
    result = BaselineAccuracy()
    for flow in flows:
        result.total += 1
        predicted = model.predict(flow.src_ip, flow.version)
        if predicted is None:
            result.unpredicted += 1
            continue
        if router_level:
            correct = predicted.router == flow.ingress.router
        else:
            correct = predicted == flow.ingress or (
                predicted.router == flow.ingress.router
                and flow.ingress.interface in predicted.interfaces()
            )
        if correct:
            result.correct += 1
    return result
