"""Address-space-sharded IPD: the coordinator.

:class:`ShardedIPD` presents the single-engine surface — ``ingest``,
``ingest_batch``, ``sweep``, ``snapshot``, ``state_size`` — while the
work is split across ``2^k`` shard engines (one per depth-``k`` subtree,
routed on the masked source's top ``k`` bits) plus a small *aggregator*
engine that owns every range coarser than ``/k``.

The design invariant is **byte-identical output**: the visible leaves of
aggregator + shards partition the address space exactly like one
engine's trie, and every Stage-2 decision is made by the same code on
the same per-range state.  Three properties make that hold:

* *Stable routing between ticks.*  Trie shape only changes inside
  :meth:`sweep`, so the delegation map (which depth-``k`` subtrees are
  shard-owned) is frozen while flows are routed; a flow lands in the
  same leaf state a single engine would have put it in.
* *Pure per-leaf decisions.*  Classification, split, expiry and decay
  depend only on (leaf state, ``now``, params) — never on other leaves —
  so running them inside a shard is indistinguishable from running them
  inside one big trie.
* *Confluent closures.*  Joins and prunes are applied to pairwise-
  independent sibling pairs and cascaded; the sharded sweep performs the
  shard-local pairs, then the cross-boundary pairs at ``/k`` (both shard
  roots reduced to a single agreeing leaf), then cascades upward through
  the aggregator — reaching the same fixed point as the single engine's
  one-pass closure.

Handoffs move ranges across the ``/k`` boundary: after each sweep the
aggregator delegates any visible unclassified leaf that reached depth
``k`` down to its shard (a ``seed`` op carrying the observation state),
and the reconciliation above pulls ranges back up (``reset`` ops).  Both
sides mark the vacated leaf with a
:class:`~repro.core.state.DelegatedState` so exactly one engine owns any
address at any time.

The §5.8 load-balance detector needs full-trie walks and is not
supported in sharded mode — attach it to a plain :class:`IPD`.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Iterable, Optional

from ..core.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionImage,
    decode_admission,
    encode_admission,
    merge_admission_images,
)
from ..core.algorithm import IPD, SweepReport, _is_empty_unclassified
from ..core.iputil import IPV4, IPV6, Prefix
from ..core.output import IPDRecord
from ..core.params import DEFAULT_PARAMS, IPDParams
from ..core.rangetree import RangeNode
from ..core.state import UnclassifiedState
from ..core.statecodec import (
    EngineImage,
    NodeImage,
    decode_engine_span,
    decode_subtree,
    encode_engine,
    encode_subtree,
    plant_image,
    tree_to_image,
    unclassified_image,
)
from ..netflow.records import FlowBatch, FlowRecord, iter_flow_batches
from .executors import make_executor
from .shards import ShardTickResult

__all__ = ["ShardedIPD"]

#: buffered per-flow rows are flushed to the executor at this many rows
_PENDING_FLUSH_ROWS = 8192


class ShardedIPD:
    """A drop-in IPD engine that fans ingest out over ``2^k`` shards."""

    def __init__(
        self,
        params: IPDParams | None = None,
        shards: int = 4,
        executor: str = "serial",
        workers: Optional[int] = None,
        transport: str = "pickle",
        admission: Optional[AdmissionConfig] = None,
    ) -> None:
        params = params or DEFAULT_PARAMS
        if shards < 1 or shards & (shards - 1):
            raise ValueError(f"shards must be a power of two, got {shards}")
        depth = shards.bit_length() - 1
        max_depth = min(params.cidr_max(IPV4), params.cidr_max(IPV6))
        if depth > max_depth:
            raise ValueError(
                f"split depth {depth} (shards={shards}) exceeds "
                f"cidr_max {max_depth}"
            )
        self.params = params
        self.shards = shards
        self.split_depth = depth
        self.executor_kind = executor
        self.transport = transport
        # the *config* (not a controller) is what crosses process
        # boundaries: each engine builds its own controller from it, and
        # identical seeds/geometry keep the shard sketches mergeable
        self.admission_config = admission
        #: ranges coarser than /k live here, in a plain single engine
        self.aggregator = IPD(params, admission=admission)
        self._executor = make_executor(
            executor, params, depth, workers, transport, admission=admission
        )
        #: family version -> shard indices currently delegated down
        self._delegated: dict[int, set[int]] = {IPV4: set(), IPV6: set()}
        #: family version -> shard index -> the aggregator's placeholder leaf
        self._portals: dict[int, dict[int, RangeNode]] = {IPV4: {}, IPV6: {}}
        self._shifts = {
            version: Prefix.root(version).bits - depth
            for version in (IPV4, IPV6)
        }
        #: (version, index) -> FlowBatch accumulating per-flow submissions
        self._pending: dict[tuple[int, int], FlowBatch] = {}
        self._pending_rows = 0
        self.flows_ingested = 0
        self.bytes_ingested = 0
        self.last_sweep_at: float | None = None
        self._closed = False
        if depth == 0:
            # A single shard owns the whole space; the aggregator is a
            # permanently inert /0 placeholder per family.
            ops: list[tuple] = []
            for version, tree in self.aggregator.trees.items():
                self._delegate(version, tree.root, ops)
            self._executor.apply(ops)

    # ------------------------------------------------------------------ stage 1

    def ingest(self, flow: FlowRecord) -> None:
        """Route one flow to its owning engine (buffered for shards)."""
        version = flow.version
        if self.split_depth and (
            flow.src_ip >> self._shifts[version]
        ) not in self._delegated[version]:
            self.aggregator.ingest(flow)
        else:
            index = (
                flow.src_ip >> self._shifts[version] if self.split_depth else 0
            )
            pending = self._pending.get((version, index))
            if pending is None:
                pending = self._pending[(version, index)] = FlowBatch(version)
            pending.append(flow)
            self._pending_rows += 1
            if self._pending_rows >= _PENDING_FLUSH_ROWS:
                self._flush_pending()
        self.flows_ingested += 1
        self.bytes_ingested += flow.bytes

    def ingest_batch(self, batch: FlowBatch) -> int:
        """Route a columnar batch: aggregator rows inline, shard rows fed out."""
        count = len(batch.timestamps)
        if count == 0:
            return 0
        self.flows_ingested += count
        self.bytes_ingested += sum(batch.byte_counts)
        version = batch.version
        if self.split_depth == 0:
            self._executor.feed(0, batch)
            return count
        delegated = self._delegated[version]
        if not delegated:
            self.aggregator.ingest_batch(batch)
            return count
        shift = self._shifts[version]
        src_ips = batch.src_ips
        buckets: dict[int, list[int]] = {}
        if len(delegated) == self.shards:
            aggregator_rows: list[int] = []
            for row, src in enumerate(src_ips):
                index = src >> shift
                rows = buckets.get(index)
                if rows is None:
                    buckets[index] = [row]
                else:
                    rows.append(row)
        else:
            aggregator_rows = []
            for row, src in enumerate(src_ips):
                index = src >> shift
                if index in delegated:
                    rows = buckets.get(index)
                    if rows is None:
                        buckets[index] = [row]
                    else:
                        rows.append(row)
                else:
                    aggregator_rows.append(row)
        if aggregator_rows:
            self.aggregator.ingest_batch(batch.select(aggregator_rows))
        for index, rows in buckets.items():
            self._executor.feed(index, batch.select(rows))
        return count

    def ingest_many(self, flows: "Iterable[FlowRecord] | FlowBatch") -> int:
        """Batched routing for an iterable of flows."""
        if isinstance(flows, FlowBatch):
            return self.ingest_batch(flows)
        count = 0
        for batch in iter_flow_batches(flows):
            count += self.ingest_batch(batch)
        return count

    def _flush_pending(self) -> None:
        if not self._pending:
            return
        pending, self._pending = self._pending, {}
        self._pending_rows = 0
        for (__, index), batch in pending.items():
            self._executor.feed(index, batch)

    # ------------------------------------------------------------------ stage 2

    def sweep(self, now: float) -> SweepReport:
        """One coordinated Stage-2 tick across aggregator and shards."""
        started = time.perf_counter()
        self._flush_pending()
        # Shards sweep concurrently with the aggregator (disjoint state).
        self._executor.tick_begin(now)
        aggregator_report = self.aggregator.sweep(now)
        results = self._executor.tick_collect()

        ops: list[tuple] = []
        boundary_joins, boundary_prunes = self._reconcile(results, ops)
        self._handoff(ops)
        if ops:
            self._executor.apply(ops)

        report = self._merge_reports(
            now, aggregator_report, results, boundary_joins, boundary_prunes
        )
        report.duration_seconds = time.perf_counter() - started
        self.last_sweep_at = now
        return report

    def _reconcile(
        self, results: dict[int, ShardTickResult], ops: list[tuple]
    ) -> tuple[int, int]:
        """Cross-boundary closure: joins and prunes spanning the /k cut.

        A sibling pair of shard roots that a single engine would have
        merged (both single classified leaves, same ingress, combined
        samples above the parent's ``n_cidr``) is joined into the
        aggregator's parent leaf, and the join cascade continues upward
        exactly as in :meth:`IPD._join_pass`.  Likewise a pair of empty
        roots collapses back into an (unclassified, empty) aggregator
        leaf and cascades through ``prune_upward``.  Joins run before
        prunes, matching the single engine's per-sweep order.
        """
        if self.split_depth == 0:
            return 0, 0
        joins = 0
        prunes = 0
        params = self.params
        for version in (IPV4, IPV6):
            tree = self.aggregator.trees[version]
            delegated = self._delegated[version]
            portals = self._portals[version]
            new_classified: list[RangeNode] = []
            new_empty: list[RangeNode] = []
            for index in sorted(delegated):
                if index & 1 or (index + 1) not in delegated:
                    continue
                sibling = index + 1
                left = results[index].roots[version]
                right = results[sibling].roots[version]
                if left.kind == "classified" and right.kind == "classified":
                    if left.ingress != right.ingress:
                        continue
                    parent = portals[index].parent
                    assert parent is not None
                    threshold = params.n_cidr(parent.prefix.masklen, version)
                    if left.total + right.total < threshold:
                        continue
                    merged = left.as_classified_state().merged_with(
                        right.as_classified_state()
                    )
                    tree.join(parent, merged)
                    joins += 1
                    self._undelegate(version, index, ops)
                    self._undelegate(version, sibling, ops)
                    new_classified.append(parent)
                elif left.kind == "empty" and right.kind == "empty":
                    parent = portals[index].parent
                    assert parent is not None
                    tree.collapse(parent)
                    prunes += 1
                    self._undelegate(version, index, ops)
                    self._undelegate(version, sibling, ops)
                    new_empty.append(parent)
            for leaf in new_classified:
                if not leaf.dead:
                    joins += self.aggregator._join_cascade(tree, leaf)
            prunes += tree.prune_upward(
                new_empty,
                _is_empty_unclassified,
                on_remove=self.aggregator._forget_prefix,
            )
        return joins, prunes

    def _handoff(self, ops: list[tuple]) -> None:
        """Delegate aggregator leaves that reached the shard depth.

        The aggregator's split cascade descends one level per sweep;
        any visible unclassified leaf now sitting exactly at depth
        ``k`` is handed to its shard, so between ticks the aggregator
        only ever owns ranges coarser than ``/k``.  The walk is over
        the aggregator trie only — at most ``2^(k+1)`` nodes.
        """
        depth = self.split_depth
        if depth == 0:
            return
        for version, tree in self.aggregator.trees.items():
            for leaf in list(tree.leaves()):
                if leaf.prefix.masklen == depth and isinstance(
                    leaf._state, UnclassifiedState
                ):
                    self._delegate(version, leaf, ops)

    def _delegate(
        self, version: int, leaf: RangeNode, ops: list[tuple]
    ) -> None:
        tree = self.aggregator.trees[version]
        was_dirty = leaf in tree.dirty
        state = tree.delegate(leaf)
        index = (
            leaf.prefix.value >> self._shifts[version]
            if self.split_depth
            else 0
        )
        self._delegated[version].add(index)
        self._portals[version][index] = leaf
        # Handoff is state *transfer*, not state sharing: the leaf's
        # observation state crosses the boundary as an encoded subtree
        # blob (exactly what checkpoint resume sends), so aggregator and
        # shard never alias one state object even in-process.
        payload = encode_subtree(
            leaf.prefix, version, unclassified_image(state, was_dirty)
        )
        ops.append(("seed", index, version, payload))

    def _undelegate(self, version: int, index: int, ops: list[tuple]) -> None:
        self._delegated[version].discard(index)
        self._portals[version].pop(index, None)
        ops.append(("reset", index, version))

    def _merge_reports(
        self,
        now: float,
        aggregator_report: SweepReport,
        results: dict[int, ShardTickResult],
        boundary_joins: int,
        boundary_prunes: int,
    ) -> SweepReport:
        report = SweepReport(timestamp=now)
        for part in [aggregator_report] + [r.report for r in results.values()]:
            report.classifications += part.classifications
            report.splits += part.splits
            report.joins += part.joins
            report.drops += part.drops
            report.prunes += part.prunes
            report.expired_sources += part.expired_sources
            report.decayed_ranges += part.decayed_ranges
            report.visited += part.visited
            report.cache_size += part.cache_size
            report.cache_hits += part.cache_hits
            report.cache_misses += part.cache_misses
            report.cache_evictions += part.cache_evictions
            report.admission_admitted += part.admission_admitted
            report.admission_held += part.admission_held
            report.admission_dropped += part.admission_dropped
            report.admission_promoted += part.admission_promoted
            report.admission_saturated = (
                report.admission_saturated or part.admission_saturated
            )
        report.joins += boundary_joins
        report.prunes += boundary_prunes
        # Leaf/classified totals reflect the post-reconcile state (the
        # single engine likewise counts after its join/prune passes).
        metrics = self._executor.metrics()
        for version, tree in self.aggregator.trees.items():
            report.leaves_by_version[version] = tree.leaf_count() + (
                metrics.leaves_by_version.get(version, 0)
            )
        report.leaves = sum(report.leaves_by_version.values())
        report.classified = sum(
            tree.classified_count() for tree in self.aggregator.trees.values()
        ) + sum(metrics.classified_by_version.values())
        return report

    # ------------------------------------------------------------------ admission

    def saturate_admission(self) -> None:
        """Force every engine's sketch to the saturation ceiling.

        The ``sketch_saturate`` chaos site: from the next filtered group
        on, aggregator and shards alike degrade to admit-everything.
        No-op when admission is off.
        """
        if self.admission_config is None:
            return
        self.aggregator.saturate_admission()
        self._executor.apply(
            [("saturate", index, 0) for index in range(self.shards)]
        )

    def _admission_image(self) -> Optional[AdmissionImage]:
        """The deployment-wide merged admission image (``None`` when off)."""
        if self.aggregator.admission is None:
            return None
        images: list[Optional[AdmissionImage]] = [
            self.aggregator.admission.to_image()
        ]
        images.extend(self._executor.admission_export().values())
        return merge_admission_images(images)

    def _restore_admission(self, image: AdmissionImage) -> None:
        """Distribute a checkpointed admission image across the engines.

        Sketch counts, the elephant herd, the age boundary and the
        saturation flag are broadcast whole — a shard seeing the full
        deployment's counts can only over-admit, which is always safe.
        Held groups (exact mode) are routed like flows: a masked source
        whose top-``k`` bits are delegated goes to that shard, anything
        else to the aggregator, so each engine replays exactly the
        groups it would have been holding.
        """
        aggregator_held: dict[int, dict[int, list]] = {}
        shard_held: dict[int, dict[int, dict[int, list]]] = {}
        for version, groups in image.held.items():
            shift = self._shifts[version]
            delegated = self._delegated[version]
            for masked, group in groups.items():
                index = masked >> shift
                if index in delegated:
                    shard_held.setdefault(index, {}).setdefault(
                        version, {}
                    )[masked] = group
                else:
                    aggregator_held.setdefault(version, {})[masked] = group
        self.aggregator.admission = AdmissionController.from_image(
            replace(image, held=aggregator_held)
        )
        self._executor.apply(
            [
                (
                    "admission",
                    index,
                    0,
                    encode_admission(
                        replace(image, held=shard_held.get(index, {}))
                    ),
                )
                for index in range(self.shards)
            ]
        )

    # ------------------------------------------------------------------ state io

    def to_image(self) -> EngineImage:
        """The merged single-engine-equivalent image of the whole deployment.

        Shard engines export their active subtrees as encoded blobs;
        each is grafted into the aggregator trie at its portal (the
        delegated placeholder leaf), and shard split/join counts fold
        into the per-family totals.  The result contains no delegated
        nodes: it is exactly the image a plain :class:`IPD` holding the
        same state would produce, which is what makes a checkpoint
        restorable at *any* legal shard count.
        """
        self._flush_pending()
        exports = self._executor.export()
        trees = {}
        for version, tree in self.aggregator.trees.items():
            grafts: dict[Prefix, NodeImage] = {}
            shard_splits = 0
            shard_joins = 0
            for index in sorted(exports):
                payload = exports[index].get(version)
                if payload is None:
                    continue
                subtree = decode_subtree(payload)
                grafts[subtree.prefix] = subtree.root
                shard_splits += subtree.split_count
                shard_joins += subtree.join_count
            image = tree_to_image(tree, grafts)
            image.split_count += shard_splits
            image.join_count += shard_joins
            trees[version] = image
        return EngineImage(
            params=self.params,
            flows_ingested=self.flows_ingested,
            bytes_ingested=self.bytes_ingested,
            last_sweep_at=self.last_sweep_at,
            cidrmax_failures=dict(self.aggregator._cidrmax_failures),
            trees=trees,
        )

    def to_bytes(self) -> bytes:
        """Serialize the merged deployment state to one engine blob.

        With admission on, the merged admission section (cellwise-summed
        sketches, elephant union, all held groups) is appended after the
        engine section, exactly as :meth:`IPD.to_bytes` appends its own
        controller's — so the blob restores on any topology.
        """
        blob = encode_engine(self.to_image())
        merged = self._admission_image()
        if merged is not None:
            blob += encode_admission(merged)
        return blob

    @classmethod
    def from_image(
        cls,
        image: EngineImage,
        shards: int = 4,
        executor: str = "serial",
        workers: Optional[int] = None,
        transport: str = "pickle",
        admission: Optional[AdmissionConfig] = None,
    ) -> "ShardedIPD":
        """Rebuild a sharded deployment from a merged engine image.

        The image need not come from the same shard count — it is the
        merged single-engine view, so it is re-carved at this
        deployment's split depth: every node at exactly depth ``k``
        becomes a shard seed (subtree blob), everything coarser stays in
        the aggregator, and the carved positions become delegated
        portals.  Resuming a 4-shard checkpoint on 16 shards (or on a
        plain engine via :meth:`IPD.from_image`) is therefore legal and
        produces identical future behavior.
        """
        engine = cls(
            params=image.params,
            shards=shards,
            executor=executor,
            workers=workers,
            transport=transport,
            admission=admission,
        )
        depth = engine.split_depth
        ops: list[tuple] = []
        for version, tree_image in image.trees.items():
            tree = engine.aggregator.trees[version]
            if depth == 0:
                # The constructor already delegated the /0 root and
                # seeded the single shard with an empty tree; replace
                # that seed with the checkpointed one wholesale.
                ops.append(("reset", 0, version))
                ops.append(
                    (
                        "seed",
                        0,
                        version,
                        encode_subtree(
                            tree.root.prefix,
                            version,
                            tree_image.root,
                            tree_image.split_count,
                            tree_image.join_count,
                        ),
                    )
                )
                continue
            seeds: list[tuple[Prefix, NodeImage]] = []
            aggregator_root = _carve(
                tree_image.root, tree.root.prefix, depth, seeds
            )
            plant_image(tree, tree.root, aggregator_root)
            # the aggregator's merged counters carry the whole family's
            # totals; seeds ship zero so the sum is preserved
            tree.split_count = tree_image.split_count
            tree.join_count = tree_image.join_count
            for prefix, node_image in seeds:
                index = prefix.value >> engine._shifts[version]
                leaf = tree.lookup_leaf(prefix.value)
                assert leaf.prefix == prefix
                engine._delegated[version].add(index)
                engine._portals[version][index] = leaf
                ops.append(
                    ("seed", index, version,
                     encode_subtree(prefix, version, node_image))
                )
        if ops:
            engine._executor.apply(ops)
        engine.flows_ingested = image.flows_ingested
        engine.bytes_ingested = image.bytes_ingested
        engine.last_sweep_at = image.last_sweep_at
        engine.aggregator._cidrmax_failures = dict(image.cidrmax_failures)
        return engine

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        params: IPDParams | None = None,
        shards: int = 4,
        executor: str = "serial",
        workers: Optional[int] = None,
        transport: str = "pickle",
        admission: Optional[AdmissionConfig] = None,
    ) -> "ShardedIPD":
        """Rebuild a sharded deployment from a :meth:`to_bytes` blob.

        A trailing admission section restores the front-end exactly
        (its embedded config wins over the *admission* argument); a
        bare engine blob plus an *admission* config starts a fresh
        front-end, which is how ``--admission`` is enabled across a
        resume from an admission-off checkpoint.
        """
        image, consumed = decode_engine_span(data, params=params)
        admission_image: Optional[AdmissionImage] = None
        if consumed < len(data):
            admission_image = decode_admission(memoryview(data)[consumed:])
            admission = admission_image.config()
        engine = cls.from_image(
            image,
            shards=shards,
            executor=executor,
            workers=workers,
            transport=transport,
            admission=admission,
        )
        if admission_image is not None:
            engine._restore_admission(admission_image)
        return engine

    # ------------------------------------------------------------------ output

    def snapshot(
        self, now: float, include_unclassified: bool = False
    ) -> list[IPDRecord]:
        """The merged Table-3 view — byte-identical to a single engine's."""
        self._flush_pending()
        records = self.aggregator.snapshot(
            now, include_unclassified=include_unclassified
        )
        records.extend(self._executor.snapshot(now, include_unclassified))
        records.sort(key=lambda record: (record.version, record.range.value))
        return records

    # ------------------------------------------------------------------ metrics

    def state_size(self) -> int:
        self._flush_pending()
        return self.aggregator.state_size() + self._executor.metrics().state_size

    def leaf_count(self) -> int:
        self._flush_pending()
        return (
            self.aggregator.leaf_count() + self._executor.metrics().leaf_count()
        )

    def close(self) -> None:
        """Shut down executor workers (idempotent)."""
        if not self._closed:
            self._closed = True
            self._executor.close()

    def __enter__(self) -> "ShardedIPD":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _carve(
    image: NodeImage,
    prefix: Prefix,
    depth: int,
    seeds: list[tuple[Prefix, NodeImage]],
) -> NodeImage:
    """Split a merged tree image at the shard depth.

    Every node sitting at exactly ``/depth`` — an entire subtree, a
    classified leaf, or an (even empty) unclassified leaf — is recorded
    as a shard seed and replaced by a delegated placeholder; everything
    coarser stays with the aggregator.  This reproduces exactly the
    ownership split a live sharded run maintains: post-sweep the
    aggregator never retains a visible leaf at depth ``>= k`` (the
    handoff delegates them the moment the split cascade arrives), and
    cross-boundary joins/prunes only ever create leaves coarser than
    ``/k``.
    """
    if prefix.masklen == depth:
        seeds.append((prefix, image))
        return NodeImage(kind="delegated")
    if image.kind != "internal":
        return image
    left_prefix, right_prefix = prefix.children()
    return NodeImage(
        kind="internal",
        left=_carve(image.left, left_prefix, depth, seeds),
        right=_carve(image.right, right_prefix, depth, seeds),
    )
