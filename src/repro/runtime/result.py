"""Replay results.

:class:`RunResult` used to live in :mod:`repro.core.driver`; it moved
here when the replay loop became the runtime :class:`~repro.runtime.pipeline.Pipeline`.
``repro.core.driver`` re-exports it, so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.algorithm import SweepReport
from ..core.output import IPDRecord

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Everything an offline replay produced."""

    #: snapshot timestamp -> records (Table-3 rows) at that time
    snapshots: dict[float, list[IPDRecord]] = field(default_factory=dict)
    sweeps: list[SweepReport] = field(default_factory=list)
    flows_processed: int = 0

    def snapshot_times(self) -> list[float]:
        return sorted(self.snapshots)

    def final_snapshot(self) -> list[IPDRecord]:
        if not self.snapshots:
            return []
        return self.snapshots[max(self.snapshots)]
