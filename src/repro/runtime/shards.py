"""The engine side of address-space sharding.

One :class:`ShardEngine` owns the depth-``k`` subtree at its shard
index: a full :class:`~repro.core.algorithm.IPD` whose per-family tries
are *rooted* at the shard's ``/k`` prefix instead of ``/0``.  A tree
whose root carries a :class:`~repro.core.state.DelegatedState` is
*inactive* — the aggregator still owns that range as a coarse leaf.
The coordinator activates a shard by shipping the aggregator leaf's
observation state down (a ``seed`` op) and deactivates it when a
cross-boundary join or prune pulls the range back up (a ``reset`` op).

Everything in this module is executor-agnostic: the serial executor
calls it in-process, the threaded executor from worker threads, and the
multiprocessing executor inside worker processes (all types here are
picklable for that reason).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..core.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionImage,
    decode_admission,
)
from ..core.algorithm import IPD, SweepReport
from ..core.iputil import IPV4, IPV6, Prefix
from ..core.params import IPDParams
from ..core.state import ClassifiedState, DelegatedState, UnclassifiedState
from ..core.statecodec import (
    StateCodecError,
    decode_subtree,
    encode_subtree,
    plant_image,
    subtree_to_image,
)
from ..netflow.records import FlowBatch
from ..topology.elements import IngressPoint

if TYPE_CHECKING:
    from ..core.output import IPDRecord
    from ..core.rangetree import RangeTree

__all__ = ["ShardEngine", "ShardTickResult", "RootSummary", "ShardMetrics"]

#: shard-op tuples exchanged between coordinator and executors:
#: ``("seed", index, version, payload)`` activates a shard's family tree
#: by planting an encoded subtree blob (a handed-down aggregator leaf,
#: or a whole carved subtree on checkpoint resume); ``("reset", index,
#: version)`` deactivates it after a cross-boundary join/prune;
#: ``("admission", index, 0, payload)`` restores the shard's admission
#: controller from an encoded admission section (checkpoint resume);
#: ``("saturate", index, 0)`` forces its sketch to the saturation
#: ceiling (the ``sketch_saturate`` fault site).
ShardOp = tuple


@dataclass
class RootSummary:
    """What the coordinator needs to know about one shard-family root.

    ``kind`` is one of:

    * ``"inactive"``   — the root is delegated (aggregator owns the range)
    * ``"busy"``       — the shard holds structure or samples under it
    * ``"empty"``      — single empty unclassified leaf (prunable)
    * ``"classified"`` — single classified leaf (joinable with its sibling)
    """

    kind: str
    ingress: Optional[IngressPoint] = None
    counters: Optional[dict[IngressPoint, float]] = None
    last_seen: float = 0.0
    classified_at: float = 0.0
    total: float = 0.0

    def as_classified_state(self) -> ClassifiedState:
        assert self.kind == "classified"
        assert self.ingress is not None and self.counters is not None
        return ClassifiedState(
            ingress=self.ingress,
            counters=dict(self.counters),
            last_seen=self.last_seen,
            classified_at=self.classified_at,
        )


@dataclass
class ShardTickResult:
    """One shard engine's contribution to a coordinated sweep tick."""

    index: int
    report: SweepReport
    #: family version -> post-sweep root summary
    roots: dict[int, RootSummary] = field(default_factory=dict)


@dataclass
class ShardMetrics:
    """Exact post-hoc counters for one or more shard engines."""

    state_size: int = 0
    leaves_by_version: dict[int, int] = field(default_factory=dict)
    classified_by_version: dict[int, int] = field(default_factory=dict)

    def add(self, other: "ShardMetrics") -> None:
        self.state_size += other.state_size
        for version, count in other.leaves_by_version.items():
            self.leaves_by_version[version] = (
                self.leaves_by_version.get(version, 0) + count
            )
        for version, count in other.classified_by_version.items():
            self.classified_by_version[version] = (
                self.classified_by_version.get(version, 0) + count
            )

    def leaf_count(self) -> int:
        return sum(self.leaves_by_version.values())


class ShardEngine:
    """One depth-``k`` subtree of the address space, run as a full IPD."""

    def __init__(
        self,
        params: IPDParams,
        depth: int,
        index: int,
        admission: Optional[AdmissionConfig] = None,
    ) -> None:
        self.index = index
        self.depth = depth
        roots = {
            version: Prefix(index << (Prefix.root(version).bits - depth),
                            depth, version)
            for version in (IPV4, IPV6)
        }
        # each shard builds its own controller from the shared config:
        # same seed and geometry, so shard sketches stay cellwise-
        # mergeable into the engine-wide admission image
        self.ipd = IPD(params, roots=roots, admission=admission)
        # Both family trees start inactive: the aggregator owns the whole
        # space until its split cascade reaches the shard depth.
        for tree in self.ipd.trees.values():
            tree.root.state = DelegatedState()

    # -- ops ----------------------------------------------------------------

    def apply_op(self, op: ShardOp) -> None:
        kind = op[0]
        if kind == "seed":
            self.seed(op[2], op[3])
        elif kind == "reset":
            self.reset(op[2])
        elif kind == "admission":
            self.ipd.admission = AdmissionController.from_image(
                decode_admission(op[3])
            )
        elif kind == "saturate":
            self.ipd.saturate_admission()
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown shard op: {op[0]!r}")

    def seed(self, version: int, payload: "bytes | memoryview") -> None:
        """Activate one family tree by planting an encoded subtree blob.

        The blob is either a single handed-down aggregator leaf (the
        per-sweep handoff) or a whole subtree carved out of a merged
        checkpoint image on resume.  Planting through the state codec
        rebuilds the tree's dirty/expiry bookkeeping, so the shard's
        next sweep behaves exactly as the source engine's would have.
        """
        image = decode_subtree(payload)
        tree = self.ipd.trees[version]
        root = tree.root
        assert root.left is None and isinstance(root._state, DelegatedState)
        if image.version != version or image.prefix != root.prefix:
            raise StateCodecError(
                f"seed for {image.prefix} (IPv{image.version}) does not "
                f"match shard root {root.prefix} (IPv{version})"
            )
        plant_image(tree, root, image.root)
        tree.split_count += image.split_count
        tree.join_count += image.join_count

    def reset(self, version: int) -> None:
        """Deactivate one family tree (range pulled back into the aggregator)."""
        root = self.ipd.trees[version].root
        assert root.left is None
        root.state = DelegatedState()

    def export(self) -> dict[int, bytes]:
        """Serialize every *active* family tree as a subtree blob.

        Inactive trees (root still delegated — the aggregator owns the
        range) are omitted.  The coordinator grafts these blobs into its
        aggregator image to form the merged single-engine-equivalent
        checkpoint.
        """
        payloads: dict[int, bytes] = {}
        for version, tree in self.ipd.trees.items():
            root = tree.root
            if root.left is None and isinstance(root._state, DelegatedState):
                continue
            payloads[version] = encode_subtree(
                root.prefix,
                version,
                subtree_to_image(tree, root),
                tree.split_count,
                tree.join_count,
            )
        return payloads

    # -- data path ----------------------------------------------------------

    def ingest_batch(self, batch: FlowBatch) -> int:
        return self.ipd.ingest_batch(batch)

    def tick(self, now: float) -> ShardTickResult:
        """Sweep and summarize the roots for boundary reconciliation."""
        report = self.ipd.sweep(now)
        return ShardTickResult(
            index=self.index,
            report=report,
            roots={
                version: self._summarize_root(tree)
                for version, tree in self.ipd.trees.items()
            },
        )

    @staticmethod
    def _summarize_root(tree: "RangeTree") -> RootSummary:
        root = tree.root
        state = root._state
        if isinstance(state, DelegatedState):
            return RootSummary("inactive")
        if root.left is not None:
            return RootSummary("busy")
        if isinstance(state, ClassifiedState):
            return RootSummary(
                "classified",
                ingress=state.ingress,
                counters=dict(state.counters),
                last_seen=state.last_seen,
                classified_at=state.classified_at,
                total=state.total,
            )
        assert isinstance(state, UnclassifiedState)
        return RootSummary("empty" if state.is_empty() else "busy")

    def admission_image(self) -> Optional[AdmissionImage]:
        """The shard controller's state image (``None`` when admission is off)."""
        if self.ipd.admission is None:
            return None
        return self.ipd.admission.to_image()

    def snapshot(
        self, now: float, include_unclassified: bool = False
    ) -> "list[IPDRecord]":
        return self.ipd.snapshot(now, include_unclassified=include_unclassified)

    def metrics(self) -> ShardMetrics:
        return ShardMetrics(
            state_size=self.ipd.state_size(),
            leaves_by_version={
                version: tree.leaf_count()
                for version, tree in self.ipd.trees.items()
            },
            classified_by_version={
                version: tree.classified_count()
                for version, tree in self.ipd.trees.items()
            },
        )
