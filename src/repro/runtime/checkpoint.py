"""Durable checkpoints: consistent post-sweep engine images on disk.

The paper's deployment runs IPD continuously for years (§4 builds a
2.5-trillion-record longitudinal archive); state that lives only in
process memory means any restart pays a full cold re-convergence.  This
module persists the *merged* engine state — produced by the
:mod:`repro.core.statecodec` wire codec — so a run can stop, crash, or
reshard and continue exactly where it left off.

Checkpoints are only taken at sweep ticks (the pipeline's barrier), so
every saved image is a consistent post-sweep state: all ingest up to the
tick applied, the sweep's joins/prunes/handoffs settled.  Restoring one
and replaying the remaining flows reproduces the uninterrupted run
byte-for-byte — including, for a sharded engine, restoring at a
*different* shard count (the blob is the merged single-engine view; see
:meth:`repro.runtime.sharding.ShardedIPD.from_image`).

A checkpoint file is::

    magic "IPDC" | u16 container version | u32 metadata length
    | metadata (JSON: replay cursor) | engine blob (statecodec)

:class:`CheckpointStore` writes atomically (temp file + ``os.replace``)
and keeps the newest ``retain`` files, so a crash mid-write can never
corrupt the latest restorable state.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..core.algorithm import IPD
from ..core.params import IPDParams
from ..core.statecodec import IncompatibleStateError, StateCodecError
from .sharding import ShardedIPD

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointStore",
    "restore_engine",
]

#: bump when the checkpoint container layout changes
CHECKPOINT_VERSION = 1

_MAGIC = b"IPDC"
_HEADER = struct.Struct(">HI")


@dataclass(frozen=True)
class Checkpoint:
    """One saved engine state plus the replay cursor to resume from it.

    ``when`` is the sweep tick the image was taken at (post-sweep);
    ``flows_processed`` is how many flow rows the run had consumed, which
    doubles as the skip count when the same stream is replayed on
    resume.  ``next_sweep`` / ``next_snapshot`` restore the pipeline's
    time grids and ``sweep_count`` lets a recovery stitch sweep reports
    without duplicates.
    """

    when: float
    flows_processed: int
    next_sweep: float
    next_snapshot: Optional[float]
    sweep_count: int
    engine_blob: bytes

    def to_bytes(self) -> bytes:
        meta = json.dumps(
            {
                "when": self.when,
                "flows_processed": self.flows_processed,
                "next_sweep": self.next_sweep,
                "next_snapshot": self.next_snapshot,
                "sweep_count": self.sweep_count,
            },
            sort_keys=True,
        ).encode("utf-8")
        return (
            _MAGIC
            + _HEADER.pack(CHECKPOINT_VERSION, len(meta))
            + meta
            + self.engine_blob
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        if data[:4] != _MAGIC:
            raise StateCodecError("not an IPD checkpoint (bad magic)")
        if len(data) < 4 + _HEADER.size:
            raise StateCodecError("truncated checkpoint header")
        version, meta_len = _HEADER.unpack_from(data, 4)
        if version > CHECKPOINT_VERSION:
            raise IncompatibleStateError(
                f"checkpoint container version {version}; this build reads "
                f"up to {CHECKPOINT_VERSION}"
            )
        meta_end = 4 + _HEADER.size + meta_len
        if len(data) < meta_end:
            raise StateCodecError("truncated checkpoint metadata")
        try:
            meta = json.loads(data[4 + _HEADER.size:meta_end])
        except ValueError as exc:
            raise StateCodecError(f"damaged checkpoint metadata: {exc}") from exc
        return cls(
            when=float(meta["when"]),
            flows_processed=int(meta["flows_processed"]),
            next_sweep=float(meta["next_sweep"]),
            next_snapshot=(
                None
                if meta.get("next_snapshot") is None
                else float(meta["next_snapshot"])
            ),
            sweep_count=int(meta["sweep_count"]),
            engine_blob=data[meta_end:],
        )


class CheckpointStore:
    """A directory of checkpoint files with atomic writes and retention."""

    def __init__(self, directory: Union[str, Path], retain: int = 3) -> None:
        if retain < 1:
            raise ValueError("retain must be at least 1")
        self.directory = Path(directory)
        self.retain = retain
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path_for(self, when: float) -> Path:
        # zero-padded fixed width so lexicographic file order == tick order
        return self.directory / f"checkpoint-{when:020.6f}.ckpt"

    def list(self) -> list[Path]:
        """Checkpoint files, oldest first."""
        return sorted(self.directory.glob("checkpoint-*.ckpt"))

    def save(self, checkpoint: Checkpoint) -> Path:
        """Atomically persist one checkpoint and prune old ones."""
        path = self._path_for(checkpoint.when)
        tmp = path.with_suffix(".ckpt.tmp")
        data = checkpoint.to_bytes()
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        for stale in self.list()[:-self.retain]:
            stale.unlink(missing_ok=True)
        return path

    def load(self, path: Union[str, Path]) -> Checkpoint:
        return Checkpoint.from_bytes(Path(path).read_bytes())

    def latest(self) -> Optional[Checkpoint]:
        """The newest checkpoint, or ``None`` when the store is empty."""
        paths = self.list()
        return self.load(paths[-1]) if paths else None


def restore_engine(
    blob: bytes,
    params: Optional[IPDParams] = None,
    shards: int = 1,
    executor: str = "serial",
    workers: Optional[int] = None,
):
    """Rebuild an engine of the requested topology from an engine blob.

    The blob is topology-free (a merged single-engine image), so any
    legal ``shards``/``executor`` combination works — including one that
    differs from the checkpointing run's.  ``shards=1, executor='serial'``
    yields a plain :class:`~repro.core.algorithm.IPD`.
    """
    if shards == 1 and executor == "serial":
        return IPD.from_bytes(blob, params=params)
    return ShardedIPD.from_bytes(
        blob, params=params, shards=shards, executor=executor, workers=workers
    )
