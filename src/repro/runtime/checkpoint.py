"""Durable checkpoints: consistent post-sweep engine images on disk.

The paper's deployment runs IPD continuously for years (§4 builds a
2.5-trillion-record longitudinal archive); state that lives only in
process memory means any restart pays a full cold re-convergence.  This
module persists the *merged* engine state — produced by the
:mod:`repro.core.statecodec` wire codec — so a run can stop, crash, or
reshard and continue exactly where it left off.

Checkpoints are only taken at sweep ticks (the pipeline's barrier), so
every saved image is a consistent post-sweep state: all ingest up to the
tick applied, the sweep's joins/prunes/handoffs settled.  Restoring one
and replaying the remaining flows reproduces the uninterrupted run
byte-for-byte — including, for a sharded engine, restoring at a
*different* shard count (the blob is the merged single-engine view; see
:meth:`repro.runtime.sharding.ShardedIPD.from_image`).

A checkpoint file is::

    magic "IPDC" | u16 container version | u32 metadata length
    | u32 CRC-32 of payload | metadata (JSON: replay cursor)
    | engine blob (statecodec)

The CRC (container version 2; version-1 files without it still load)
makes *any* at-rest corruption — truncation, bit rot, partial writes on
exotic filesystems — fail loudly as :class:`CheckpointCorruptError`
instead of depending on the damage happening to break the codec's
structure.  :class:`CheckpointStore` writes atomically (temp file +
``os.replace``) and keeps the newest ``retain`` files, so a crash
mid-write can never corrupt the latest restorable state.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Union

from ..core.admission import AdmissionConfig
from ..core.algorithm import IPD
from ..core.params import IPDParams
from ..core.statecodec import IncompatibleStateError, StateCodecError
from .faulthook import FaultHookLike
from .sharding import ShardedIPD

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointCorruptError",
    "CheckpointStore",
    "restore_engine",
]

#: bump when the checkpoint container layout changes; version 2 added
#: the payload CRC (version-1 files remain readable)
CHECKPOINT_VERSION = 2

_MAGIC = b"IPDC"
_HEADER = struct.Struct(">HI")
_CRC = struct.Struct(">I")


class CheckpointCorruptError(StateCodecError):
    """A checkpoint file is damaged (truncated, bit-flipped, garbled).

    Carries the ``path`` of the offending file and, when the decoder got
    far enough to know, the byte ``offset`` within the *engine blob*
    where parsing gave up — enough for an operator to tell a torn write
    (offset near the end) from wholesale corruption.  Distinct from
    :class:`~repro.core.statecodec.IncompatibleStateError`, which marks
    a *healthy* file this build is too old to read.
    """

    def __init__(
        self,
        message: str,
        path: "Path | None" = None,
        offset: "int | None" = None,
    ) -> None:
        super().__init__(message, offset=offset)
        self.path = path

    def __str__(self) -> str:  # noqa: D105 - compose location suffix
        base = super().__str__()
        details = []
        if self.path is not None:
            details.append(f"file={self.path}")
        if self.offset is not None:
            details.append(f"blob offset={self.offset}")
        return f"{base} [{', '.join(details)}]" if details else base


@dataclass(frozen=True)
class Checkpoint:
    """One saved engine state plus the replay cursor to resume from it.

    ``when`` is the sweep tick the image was taken at (post-sweep);
    ``flows_processed`` is how many flow rows the run had consumed, which
    doubles as the skip count when the same stream is replayed on
    resume.  ``next_sweep`` / ``next_snapshot`` restore the pipeline's
    time grids and ``sweep_count`` lets a recovery stitch sweep reports
    without duplicates.  ``path`` is set by :meth:`CheckpointStore.load`
    (purely informational; not serialized, not part of equality).
    """

    when: float
    flows_processed: int
    next_sweep: float
    next_snapshot: Optional[float]
    sweep_count: int
    engine_blob: bytes
    path: Optional[Path] = field(default=None, compare=False, repr=False)

    def to_bytes(self) -> bytes:
        meta = json.dumps(
            {
                "when": self.when,
                "flows_processed": self.flows_processed,
                "next_sweep": self.next_sweep,
                "next_snapshot": self.next_snapshot,
                "sweep_count": self.sweep_count,
            },
            sort_keys=True,
        ).encode("utf-8")
        crc = zlib.crc32(meta + self.engine_blob) & 0xFFFFFFFF
        return (
            _MAGIC
            + _HEADER.pack(CHECKPOINT_VERSION, len(meta))
            + _CRC.pack(crc)
            + meta
            + self.engine_blob
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        if data[:4] != _MAGIC:
            raise StateCodecError("not an IPD checkpoint (bad magic)")
        if len(data) < 4 + _HEADER.size:
            raise StateCodecError("truncated checkpoint header")
        version, meta_len = _HEADER.unpack_from(data, 4)
        if version > CHECKPOINT_VERSION:
            raise IncompatibleStateError(
                f"checkpoint container version {version}; this build reads "
                f"up to {CHECKPOINT_VERSION}"
            )
        meta_start = 4 + _HEADER.size
        expected_crc: Optional[int] = None
        if version >= 2:
            if len(data) < meta_start + _CRC.size:
                raise StateCodecError("truncated checkpoint header")
            (expected_crc,) = _CRC.unpack_from(data, meta_start)
            meta_start += _CRC.size
        meta_end = meta_start + meta_len
        if len(data) < meta_end:
            raise StateCodecError("truncated checkpoint metadata")
        payload = data[meta_start:]
        if expected_crc is not None:
            actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
            if actual_crc != expected_crc:
                raise StateCodecError(
                    f"checkpoint payload CRC mismatch "
                    f"(stored {expected_crc:#010x}, computed {actual_crc:#010x})"
                )
        try:
            meta = json.loads(data[meta_start:meta_end])
        except ValueError as exc:
            raise StateCodecError(f"damaged checkpoint metadata: {exc}") from exc
        return cls(
            when=float(meta["when"]),
            flows_processed=int(meta["flows_processed"]),
            next_sweep=float(meta["next_sweep"]),
            next_snapshot=(
                None
                if meta.get("next_snapshot") is None
                else float(meta["next_snapshot"])
            ),
            sweep_count=int(meta["sweep_count"]),
            engine_blob=data[meta_end:],
        )


class CheckpointStore:
    """A directory of checkpoint files with atomic writes and retention.

    ``fault_hook`` is the testkit's chaos seam
    (:class:`~repro.testkit.faults.FaultPlan`): when set, the serialized
    bytes pass through ``hook.on_checkpoint_save(when, data)`` before
    touching disk, letting the chaos suite persist deliberately damaged
    files.  Unset (the default), the save path is unchanged.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        retain: int = 3,
        fault_hook: Optional[FaultHookLike] = None,
    ) -> None:
        if retain < 1:
            raise ValueError("retain must be at least 1")
        self.directory = Path(directory)
        self.retain = retain
        self.fault_hook: Optional[FaultHookLike] = fault_hook
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path_for(self, when: float) -> Path:
        # zero-padded fixed width so lexicographic file order == tick order
        return self.directory / f"checkpoint-{when:020.6f}.ckpt"

    def list(self) -> list[Path]:
        """Checkpoint files, oldest first."""
        return sorted(self.directory.glob("checkpoint-*.ckpt"))

    def save(self, checkpoint: Checkpoint) -> Path:
        """Atomically persist one checkpoint and prune old ones."""
        path = self._path_for(checkpoint.when)
        tmp = path.with_suffix(".ckpt.tmp")
        data = checkpoint.to_bytes()
        if self.fault_hook is not None:
            data = self.fault_hook.on_checkpoint_save(checkpoint.when, data)
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        for stale in self.list()[:-self.retain]:
            stale.unlink(missing_ok=True)
        return path

    def load(self, path: Union[str, Path]) -> Checkpoint:
        """Parse one checkpoint file.

        Damage of any kind — bad magic, torn header, CRC mismatch,
        garbled metadata — raises :class:`CheckpointCorruptError` with
        the file's path; a healthy-but-newer container still raises
        :class:`~repro.core.statecodec.IncompatibleStateError`.
        """
        path = Path(path)
        try:
            checkpoint = Checkpoint.from_bytes(path.read_bytes())
        except IncompatibleStateError:
            raise
        except StateCodecError as exc:
            raise CheckpointCorruptError(
                str(exc), path=path, offset=exc.offset
            ) from exc
        return replace(checkpoint, path=path)

    def latest(self) -> Optional[Checkpoint]:
        """The newest checkpoint, or ``None`` when the store is empty.

        Raises :class:`CheckpointCorruptError` if the newest file is
        damaged — explicit resumes should fail loudly rather than
        silently rewind; crash recovery uses :meth:`latest_valid`.
        """
        paths = self.list()
        return self.load(paths[-1]) if paths else None

    def latest_valid(self) -> Optional[Checkpoint]:
        """The newest *loadable* checkpoint, skipping corrupt files.

        The crash-recovery fallback: a damaged newer file costs replay
        time (recovery rewinds one more tick) but never correctness —
        the replay from the older image reproduces the same output.
        Returns ``None`` when no file loads (including incompatible
        ones); recovery then restarts from scratch.
        """
        for path in reversed(self.list()):
            try:
                return self.load(path)
            except StateCodecError:
                continue
        return None

    def restore_engine(
        self,
        checkpoint: Checkpoint,
        params: Optional[IPDParams] = None,
        shards: int = 1,
        executor: str = "serial",
        workers: Optional[int] = None,
        transport: str = "pickle",
        admission: Optional[AdmissionConfig] = None,
    ) -> "Union[IPD, ShardedIPD]":
        """Rebuild an engine from *checkpoint* (see :func:`restore_engine`).

        A truncated or corrupt engine blob raises
        :class:`CheckpointCorruptError` carrying the checkpoint's path
        and the blob offset where decoding failed, instead of whatever
        low-level struct/LEB128 error the codec hit.
        """
        try:
            return restore_engine(
                checkpoint.engine_blob,
                params=params,
                shards=shards,
                executor=executor,
                workers=workers,
                transport=transport,
                admission=admission,
            )
        except IncompatibleStateError:
            raise
        except StateCodecError as exc:
            raise CheckpointCorruptError(
                str(exc), path=checkpoint.path, offset=exc.offset
            ) from exc


def restore_engine(
    blob: bytes,
    params: Optional[IPDParams] = None,
    shards: int = 1,
    executor: str = "serial",
    workers: Optional[int] = None,
    transport: str = "pickle",
    admission: Optional[AdmissionConfig] = None,
) -> "Union[IPD, ShardedIPD]":
    """Rebuild an engine of the requested topology from an engine blob.

    The blob is topology-free (a merged single-engine image), so any
    legal ``shards``/``executor`` combination works — including one that
    differs from the checkpointing run's.  ``shards=1, executor='serial'``
    yields a plain :class:`~repro.core.algorithm.IPD`.  When the blob
    carries a trailing admission section, the front-end is restored from
    it and *admission* is ignored; otherwise *admission* attaches a
    fresh one.
    """
    if shards == 1 and executor == "serial":
        return IPD.from_bytes(blob, params=params, admission=admission)
    return ShardedIPD.from_bytes(
        blob,
        params=params,
        shards=shards,
        executor=executor,
        workers=workers,
        transport=transport,
        admission=admission,
    )
