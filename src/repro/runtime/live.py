"""Wall-clock runtime: the deployment's two-thread layout, any engine.

:class:`LivePipeline` generalizes the old ``ThreadedIPD`` (now a thin
subclass kept for compatibility): Stage 1 runs in a consumer thread fed
through :meth:`submit` / :meth:`submit_batch`, Stage 2 in a timer thread
every ``sweep_interval`` wall-clock seconds (§3.2, §5.7).  A single lock
serializes engine access — the deployment similarly runs Stage 2
single-threaded.  The engine may be a plain
:class:`~repro.core.algorithm.IPD` or a sharded coordinator, chosen by
the same ``shards`` / ``executor`` knobs as the offline
:class:`~repro.runtime.pipeline.Pipeline`.

``stop()`` guarantees *no submitted flow is lost*: after the worker
threads exit, anything still sitting in the ingest queue — items that
raced the stop sentinel, or everything when the runtime was never
started — is drained into the engine before the final sweep.

With a checkpoint store attached, the sweep thread persists the engine
image after a sweep every ``checkpoint_every`` wall-clock seconds, and
``stop()`` saves a final image after the closing sweep — the live
analogue of the offline pipeline's sweep-tick barrier (state is only
ever saved under the lock, right after a sweep, so the image is a
consistent post-sweep one).  :meth:`LivePipeline.resume` restores the
latest image into a fresh runtime.
"""

from __future__ import annotations

import queue
import threading
import time
from pathlib import Path
from typing import Callable, Optional, Union

from ..core.algorithm import IPD, SweepReport
from ..core.output import IPDRecord
from ..core.params import IPDParams
from ..netflow.records import FlowBatch, FlowRecord
from .checkpoint import Checkpoint, CheckpointStore, restore_engine
from .executors import EXECUTOR_KINDS
from .sharding import ShardedIPD

__all__ = ["LivePipeline", "PipelineStateError"]


class PipelineStateError(RuntimeError):
    """Lifecycle misuse of a live runtime (e.g. ``start()`` twice)."""


class LivePipeline:
    """Live (wall-clock) IPD: ingest queue + periodic sweep thread."""

    def __init__(
        self,
        params: IPDParams | None = None,
        sweep_interval: float = 1.0,
        clock: Callable[[], float] | None = None,
        shards: int = 1,
        executor: str = "serial",
        workers: Optional[int] = None,
        transport: str = "pickle",
        engine: "IPD | ShardedIPD | None" = None,
        checkpoint_store: "CheckpointStore | str | Path | None" = None,
        checkpoint_every: Optional[float] = None,
    ) -> None:
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTOR_KINDS}"
            )
        if engine is not None:
            self.engine = engine
        elif shards == 1 and executor == "serial":
            self.engine = IPD(params)
        else:
            self.engine = ShardedIPD(
                params,
                shards=shards,
                executor=executor,
                workers=workers,
                transport=transport,
            )
        self.sweep_interval = sweep_interval
        if checkpoint_store is not None and not isinstance(
            checkpoint_store, CheckpointStore
        ):
            checkpoint_store = CheckpointStore(checkpoint_store)
        self.checkpoint_store = checkpoint_store
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        #: wall-clock seconds between periodic saves; None saves only on stop
        self.checkpoint_every = checkpoint_every
        # the one legitimate wall-clock read: the injectable default of
        # the live runtime's clock seam (tests substitute a fake clock)
        self._clock = clock or time.monotonic  # ipd-lint: disable=IPD001
        self._next_checkpoint: float | None = None
        self._queue: "queue.Queue[FlowRecord | FlowBatch | None]" = queue.Queue(
            maxsize=100_000
        )
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._ingest_thread: threading.Thread | None = None
        self._sweep_thread: threading.Thread | None = None
        self.sweep_reports: list[SweepReport] = []

    @classmethod
    def resume(
        cls,
        checkpoint_store: "CheckpointStore | str | Path",
        params: IPDParams | None = None,
        shards: int = 1,
        executor: str = "serial",
        workers: Optional[int] = None,
        transport: str = "pickle",
        **kwargs: object,
    ) -> "LivePipeline":
        """Restore the latest checkpoint into a fresh live runtime.

        The engine continues with the saved trie warm instead of paying
        a cold re-convergence; ``shards``/``executor`` may differ from
        the run that saved the image.
        """
        if not isinstance(checkpoint_store, CheckpointStore):
            checkpoint_store = CheckpointStore(checkpoint_store)
        checkpoint = checkpoint_store.latest()
        if checkpoint is None:
            raise FileNotFoundError(
                f"no checkpoint found in {checkpoint_store.directory}"
            )
        engine = restore_engine(
            checkpoint.engine_blob,
            params=params,
            shards=shards,
            executor=executor,
            workers=workers,
            transport=transport,
        )
        return cls(engine=engine, checkpoint_store=checkpoint_store, **kwargs)

    @property
    def ipd(self) -> "IPD | ShardedIPD":
        """The underlying engine (compatibility alias)."""
        return self.engine

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        if self._ingest_thread is not None:
            raise PipelineStateError("already started")
        self._ingest_thread = threading.Thread(
            target=self._ingest_loop, name="ipd-stage1", daemon=True
        )
        self._sweep_thread = threading.Thread(
            target=self._sweep_loop, name="ipd-stage2", daemon=True
        )
        self._ingest_thread.start()
        self._sweep_thread.start()

    def stop(self) -> None:
        """Drain the queue, stop both threads, run one final sweep.

        Every flow accepted by :meth:`submit` / :meth:`submit_batch` is
        ingested before the final sweep — including flows that were
        enqueued after the stop sentinel and flows submitted without
        :meth:`start` ever being called.
        """
        self._queue.put(None)
        if self._ingest_thread is not None:
            self._ingest_thread.join()
        self._stop.set()
        if self._sweep_thread is not None:
            self._sweep_thread.join()
        with self._lock:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is None:
                    continue  # stop sentinel (ours or a repeated stop's)
                self._ingest(item)
            now = self._clock()
            self.sweep_reports.append(self.engine.sweep(now))
            if self.checkpoint_store is not None:
                self._save_checkpoint(now)

    def close(self) -> None:
        """Shut down executor workers of a sharded engine (idempotent)."""
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    # ------------------------------------------------------------------ stage 1

    def submit(self, flow: FlowRecord, restamp: bool = True) -> None:
        """Enqueue one flow for Stage-1 ingestion.

        By default the flow is re-stamped with the live clock so that
        expiry and decay operate on a single time base (the trace clock
        of a replayed file would otherwise disagree with the sweep
        thread's wall clock).
        """
        if restamp:
            flow = flow.with_timestamp(self._clock())
        self._queue.put(flow)

    def submit_batch(self, batch: FlowBatch, restamp: bool = True) -> None:
        """Enqueue a columnar batch for Stage-1 ingestion.

        One queue item per batch: the consumer drains it through the
        amortized ``ingest_batch`` path under a single lock acquisition,
        which is where the deployment layout gains its throughput.
        """
        if restamp:
            now = self._clock()
            batch = FlowBatch(
                batch.version,
                [now] * len(batch.timestamps),
                batch.src_ips,
                batch.ingresses,
                batch.packet_counts,
                batch.byte_counts,
                batch.dst_ips,
            )
        self._queue.put(batch)

    def _ingest(self, item: "FlowRecord | FlowBatch") -> None:
        if isinstance(item, FlowBatch):
            self.engine.ingest_batch(item)
        else:
            self.engine.ingest(item)

    # ------------------------------------------------------------------ output

    def snapshot(self, include_unclassified: bool = False) -> list[IPDRecord]:
        with self._lock:
            return self.engine.snapshot(
                self._clock(), include_unclassified=include_unclassified
            )

    # ------------------------------------------------------------------ threads

    def _ingest_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            with self._lock:
                self._ingest(item)

    def _sweep_loop(self) -> None:
        while not self._stop.wait(self.sweep_interval):
            with self._lock:
                now = self._clock()
                self.sweep_reports.append(self.engine.sweep(now))
                if (
                    self.checkpoint_store is not None
                    and self.checkpoint_every is not None
                ):
                    if self._next_checkpoint is None:
                        self._next_checkpoint = now + self.checkpoint_every
                    elif now >= self._next_checkpoint:
                        self._save_checkpoint(now)
                        self._next_checkpoint = now + self.checkpoint_every

    def _save_checkpoint(self, now: float) -> None:
        """Persist a post-sweep image (caller holds the engine lock)."""
        assert self.checkpoint_store is not None
        self.checkpoint_store.save(
            Checkpoint(
                when=now,
                flows_processed=self.engine.flows_ingested,
                next_sweep=now + self.sweep_interval,
                next_snapshot=None,
                sweep_count=len(self.sweep_reports),
                engine_blob=self.engine.to_bytes(),
            )
        )
