"""The unified replay pipeline: Source → Router → engines → Merger → Sinks.

:class:`Pipeline` is the one offline entry point for running IPD over a
flow stream.  It generalizes the old ``OfflineDriver`` replay loop (which
is now a thin façade over it) across engine shapes:

* ``shards=1, executor="serial"`` — a single plain
  :class:`~repro.core.algorithm.IPD`; zero coordination overhead, the
  exact seed behaviour.
* anything else — a :class:`~repro.runtime.sharding.ShardedIPD`
  coordinator routing flows over ``shards`` address-space shards driven
  by the chosen executor (``serial`` / ``threaded`` / ``mp``).  Merged
  snapshots are byte-identical to the single-engine ones by design (the
  equivalence suite in ``tests/runtime`` pins this).

Event-driven replay semantics are unchanged: sweeps fire exactly at
``t``-second boundaries of the trace clock, snapshots every
``snapshot_seconds``, and a batch spanning a boundary is cut at the
boundary so "all ingest before each sweep tick" holds exactly.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from ..core.algorithm import IPD, SweepReport
from ..core.output import IPDRecord
from ..core.params import IPDParams
from ..netflow.records import FlowBatch, FlowRecord
from .executors import EXECUTOR_KINDS
from .result import RunResult
from .sharding import ShardedIPD
from .sinks import Sink

__all__ = ["Pipeline"]

#: engines a Pipeline can drive (anything with ingest/ingest_batch/
#: sweep/snapshot/state_size)
Engine = Union[IPD, ShardedIPD]


class Pipeline:
    """Deterministic offline replay over a single or sharded IPD engine."""

    def __init__(
        self,
        params: IPDParams | None = None,
        shards: int = 1,
        executor: str = "serial",
        workers: Optional[int] = None,
        snapshot_seconds: float = 300.0,
        include_unclassified: bool = False,
        on_sweep: Optional[Callable[[SweepReport, Engine], None]] = None,
        sinks: Optional[Sequence[Sink]] = None,
        engine: Optional[Engine] = None,
    ) -> None:
        if snapshot_seconds <= 0:
            raise ValueError("snapshot_seconds must be positive")
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTOR_KINDS}"
            )
        if engine is not None:
            self.engine: Engine = engine
        elif shards == 1 and executor == "serial":
            # The degenerate topology needs no router or merger: run the
            # plain engine and the pipeline adds zero per-flow overhead.
            self.engine = IPD(params)
        else:
            self.engine = ShardedIPD(
                params, shards=shards, executor=executor, workers=workers
            )
        self.snapshot_seconds = snapshot_seconds
        self.include_unclassified = include_unclassified
        self.on_sweep = on_sweep
        self.sinks: list[Sink] = list(sinks) if sinks is not None else []

    @property
    def params(self) -> IPDParams:
        return self.engine.params

    # ------------------------------------------------------------------ replay

    def run(self, flows: "Iterable[Union[FlowRecord, FlowBatch]]") -> RunResult:
        """Replay *flows* (non-decreasing timestamps) to completion."""
        result = RunResult()
        for __ in self.run_incremental(flows, result):
            pass
        return result

    def run_incremental(
        self,
        flows: "Iterable[Union[FlowRecord, FlowBatch]]",
        result: RunResult | None = None,
    ) -> Iterator[tuple[float, list[IPDRecord]]]:
        """Like :meth:`run` but yields ``(time, records)`` per snapshot.

        The stream may mix :class:`FlowRecord` items and columnar
        :class:`FlowBatch` runs; timestamps must be non-decreasing
        across and within items.  A batch spanning a sweep boundary is
        cut at the boundary (binary search on its timestamp column) so
        "all ingest before each sweep tick" holds exactly as in the
        per-flow replay.
        """
        engine = self.engine
        t = engine.params.t
        result = result if result is not None else RunResult()
        next_sweep: float | None = None
        next_snapshot: float | None = None
        last_time: float | None = None

        def _boundary(when: float) -> Iterator[tuple[float, list[IPDRecord]]]:
            # advance sweep/snapshot grids up to (and including) `when`
            nonlocal next_sweep, next_snapshot
            while when >= next_sweep:  # type: ignore[operator]
                self._tick(next_sweep, result)
                if next_snapshot is not None and next_sweep >= next_snapshot:
                    yield self._emit(next_sweep, result)
                    next_snapshot += self.snapshot_seconds
                next_sweep += t

        for item in flows:
            if isinstance(item, FlowBatch):
                timestamps = item.timestamps
                if not timestamps:
                    continue
                first_time = timestamps[0]
                if last_time is not None and first_time < last_time - 1e-9:
                    raise ValueError(
                        "flow stream is not time-ordered: "
                        f"{first_time} after {last_time}"
                    )
                if any(
                    timestamps[i] > timestamps[i + 1]
                    for i in range(len(timestamps) - 1)
                ):
                    raise ValueError("FlowBatch is not time-ordered internally")
                last_time = timestamps[-1]
                if next_sweep is None:
                    next_sweep = (int(first_time // t) + 1) * t
                    next_snapshot = (
                        int(first_time // self.snapshot_seconds) + 1
                    ) * self.snapshot_seconds
                start = 0
                total = len(timestamps)
                while start < total:
                    yield from _boundary(timestamps[start])
                    end = bisect_left(timestamps, next_sweep, start)
                    if start == 0 and end == total:
                        engine.ingest_batch(item)
                    else:
                        engine.ingest_batch(item.slice(start, end))
                    result.flows_processed += end - start
                    start = end
                continue
            flow = item
            if last_time is not None and flow.timestamp < last_time - 1e-9:
                raise ValueError(
                    "flow stream is not time-ordered: "
                    f"{flow.timestamp} after {last_time}"
                )
            last_time = flow.timestamp
            if next_sweep is None:
                # Align sweep/snapshot grids to the trace start.
                next_sweep = (int(flow.timestamp // t) + 1) * t
                next_snapshot = (
                    int(flow.timestamp // self.snapshot_seconds) + 1
                ) * self.snapshot_seconds
            yield from _boundary(flow.timestamp)
            engine.ingest(flow)
            result.flows_processed += 1

        if last_time is not None and next_sweep is not None:
            # Close the final bucket.
            self._tick(next_sweep, result)
            yield self._emit(next_sweep, result)

    def _tick(self, when: float, result: RunResult) -> None:
        report = self.engine.sweep(when)
        result.sweeps.append(report)
        if self.on_sweep is not None:
            self.on_sweep(report, self.engine)

    def _emit(
        self, when: float, result: RunResult
    ) -> tuple[float, list[IPDRecord]]:
        records = self.engine.snapshot(
            when, include_unclassified=self.include_unclassified
        )
        result.snapshots[when] = records
        for sink in self.sinks:
            sink.emit(when, records)
        return when, records

    # ------------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Flush sinks and shut down executor workers (idempotent)."""
        for sink in self.sinks:
            sink.close()
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
