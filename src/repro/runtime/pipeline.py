"""The unified replay pipeline: Source → Router → engines → Merger → Sinks.

:class:`Pipeline` is the one offline entry point for running IPD over a
flow stream.  It generalizes the old ``OfflineDriver`` replay loop (which
is now a thin façade over it) across engine shapes:

* ``shards=1, executor="serial"`` — a single plain
  :class:`~repro.core.algorithm.IPD`; zero coordination overhead, the
  exact seed behaviour.
* anything else — a :class:`~repro.runtime.sharding.ShardedIPD`
  coordinator routing flows over ``shards`` address-space shards driven
  by the chosen executor (``serial`` / ``threaded`` / ``mp``).  Merged
  snapshots are byte-identical to the single-engine ones by design (the
  equivalence suite in ``tests/runtime`` pins this).

Event-driven replay semantics are unchanged: sweeps fire exactly at
``t``-second boundaries of the trace clock, snapshots every
``snapshot_seconds``, and a batch spanning a boundary is cut at the
boundary so "all ingest before each sweep tick" holds exactly.

With a checkpoint store attached, the pipeline also saves the engine
state at sweep ticks (every ``checkpoint_every`` trace seconds): each
checkpoint is a consistent post-sweep image plus the replay cursor, so
:meth:`Pipeline.resume` continues an interrupted run — and when the flow
source is re-openable (a zero-argument callable), a crashed mp worker is
recovered *inside* :meth:`run` by rebuilding the engine from the last
checkpoint and replaying forward, instead of failing the run.
"""

from __future__ import annotations

import warnings
from bisect import bisect_left
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from ..core.admission import AdmissionConfig
from ..core.algorithm import IPD, SweepReport
from ..core.output import IPDRecord
from ..core.params import IPDParams
from ..core.snapshot import Snapshot
from ..netflow.records import FlowBatch, FlowRecord
from .checkpoint import Checkpoint, CheckpointStore
from .executors import EXECUTOR_KINDS, WorkerCrashError
from .faulthook import FaultHookLike
from .result import RunResult
from .sharding import ShardedIPD
from .sinks import Sink

__all__ = ["Pipeline"]


@dataclass
class _ResumeState:
    """Replay cursor restored from a checkpoint (consumed by one run)."""

    flows_processed: int
    next_sweep: float
    next_snapshot: Optional[float]

#: engines a Pipeline can drive (anything with ingest/ingest_batch/
#: sweep/snapshot/state_size)
Engine = Union[IPD, ShardedIPD]


class Pipeline:
    """Deterministic offline replay over a single or sharded IPD engine."""

    def __init__(
        self,
        params: IPDParams | None = None,
        shards: int = 1,
        executor: str = "serial",
        workers: Optional[int] = None,
        transport: str = "pickle",
        snapshot_seconds: float = 300.0,
        include_unclassified: bool = False,
        on_sweep: Optional[Callable[[SweepReport, Engine], None]] = None,
        sinks: Optional[Sequence[Sink]] = None,
        engine: Optional[Engine] = None,
        checkpoint_store: "CheckpointStore | str | Path | None" = None,
        checkpoint_every: Optional[float] = None,
        fault_hook: Optional[FaultHookLike] = None,
        admission: Optional[AdmissionConfig] = None,
    ) -> None:
        if snapshot_seconds <= 0:
            raise ValueError("snapshot_seconds must be positive")
        if executor not in EXECUTOR_KINDS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTOR_KINDS}"
            )
        if engine is not None:
            self.engine: Engine = engine
            #: topology to rebuild after a worker crash; None means the
            #: engine is caller-owned and recovery must re-raise
            self._rebuild: Optional[
                tuple[int, str, Optional[int], str, Optional[AdmissionConfig]]
            ] = None
        elif shards == 1 and executor == "serial":
            # The degenerate topology needs no router or merger: run the
            # plain engine and the pipeline adds zero per-flow overhead.
            self.engine = IPD(params, admission=admission)
            self._rebuild = (1, "serial", None, "pickle", admission)
        else:
            self.engine = ShardedIPD(
                params,
                shards=shards,
                executor=executor,
                workers=workers,
                transport=transport,
                admission=admission,
            )
            self._rebuild = (shards, executor, workers, transport, admission)
        self.snapshot_seconds = snapshot_seconds
        self.include_unclassified = include_unclassified
        self.on_sweep = on_sweep
        self.sinks: list[Sink] = list(sinks) if sinks is not None else []
        #: emission counter: each emitted Snapshot gets the next epoch
        #: number, strictly increasing for the life of this pipeline
        self._epoch = 0
        #: exactly-once guard for sink teardown (close() is re-entrant)
        self._sinks_closed = False
        if checkpoint_store is not None and not isinstance(
            checkpoint_store, CheckpointStore
        ):
            checkpoint_store = CheckpointStore(checkpoint_store)
        self.checkpoint_store = checkpoint_store
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        self.checkpoint_every = (
            checkpoint_every if checkpoint_every is not None else snapshot_seconds
        )
        #: testkit chaos seam (:class:`~repro.testkit.faults.FaultPlan`):
        #: consulted before sweeps (worker-crash site) and before sink
        #: writes (sink-error site), and propagated to the executor's
        #: own feed/tick sites — including across crash recoveries,
        #: which rebuild the engine.  ``None`` (the default) is a no-op.
        self.fault_hook: Optional[FaultHookLike] = fault_hook
        self._attach_fault_hook()
        self._resume: Optional[_ResumeState] = None
        #: teardown failures swallowed during crash recovery — the dead
        #: engine's state is unrecoverable either way, but the failures
        #: stay inspectable here (and each one raises a RuntimeWarning)
        self.teardown_errors: list[Exception] = []

    def _attach_fault_hook(self) -> None:
        if self.fault_hook is None:
            return
        executor = getattr(self.engine, "_executor", None)
        if executor is not None:
            executor.fault_hook = self.fault_hook

    @property
    def params(self) -> IPDParams:
        return self.engine.params

    # ------------------------------------------------------------------ resume

    @classmethod
    def resume(
        cls,
        checkpoint_store: "CheckpointStore | str | Path",
        checkpoint: Optional[Checkpoint] = None,
        params: IPDParams | None = None,
        shards: int = 1,
        executor: str = "serial",
        workers: Optional[int] = None,
        transport: str = "pickle",
        admission: Optional[AdmissionConfig] = None,
        **kwargs: object,
    ) -> "Pipeline":
        """Continue from a checkpoint (the latest one, unless given).

        The restored pipeline expects :meth:`run` to be fed the *same*
        flow stream the checkpointing run consumed, from the beginning —
        the replay cursor skips everything the checkpoint already
        covers.  ``shards``/``executor`` may differ from the original
        run's topology: the checkpoint holds the merged single-engine
        image, re-carved at this deployment's split depth.

        ``params`` is only required when the original run used a custom
        (non-serializable) decay function.  ``admission`` only matters
        when the checkpoint carries no admission section of its own (a
        blob-embedded section always wins).
        """
        if not isinstance(checkpoint_store, CheckpointStore):
            checkpoint_store = CheckpointStore(checkpoint_store)
        if checkpoint is None:
            checkpoint = checkpoint_store.latest()
        if checkpoint is None:
            raise FileNotFoundError(
                f"no checkpoint found in {checkpoint_store.directory}"
            )
        engine = checkpoint_store.restore_engine(
            checkpoint,
            params=params,
            shards=shards,
            executor=executor,
            workers=workers,
            transport=transport,
            admission=admission,
        )
        pipeline = cls(
            engine=engine, checkpoint_store=checkpoint_store, **kwargs
        )
        pipeline._rebuild = (shards, executor, workers, transport, admission)
        pipeline._resume = _ResumeState(
            flows_processed=checkpoint.flows_processed,
            next_sweep=checkpoint.next_sweep,
            next_snapshot=checkpoint.next_snapshot,
        )
        return pipeline

    # ------------------------------------------------------------------ replay

    def run(
        self,
        flows: "Iterable[FlowRecord | FlowBatch] | Callable[[], Iterable[FlowRecord | FlowBatch]]",
    ) -> RunResult:
        """Replay *flows* (non-decreasing timestamps) to completion.

        *flows* may also be a zero-argument callable returning the
        stream (e.g. a function re-opening a CSV).  With a checkpoint
        store attached and a pipeline-owned engine, a re-openable source
        enables crash recovery: if a shard worker process dies mid-run,
        the engine is rebuilt from the last checkpoint and the stream is
        replayed forward instead of the run failing.
        """
        if callable(flows) and not isinstance(flows, Iterable):
            if self.checkpoint_store is not None and self._rebuild is not None:
                return self._run_with_recovery(flows)
            flows = flows()
        result = RunResult()
        for __ in self.run_incremental(flows, result):
            pass
        return result

    def _run_with_recovery(
        self,
        flow_source: Callable[[], "Iterable[Union[FlowRecord, FlowBatch]]"],
        max_recoveries: int = 3,
    ) -> RunResult:
        result = RunResult()
        recoveries = 0
        while True:
            try:
                for __ in self.run_incremental(flow_source(), result):
                    pass
                return result
            except WorkerCrashError:
                recoveries += 1
                if recoveries > max_recoveries:
                    raise
                self._recover(result)

    def _recover(self, result: RunResult) -> None:
        """Rebuild the engine from the last checkpoint after a crash."""
        assert self._rebuild is not None
        params = self.engine.params
        close = getattr(self.engine, "close", None)
        if close is not None:
            try:
                close()
            except (OSError, RuntimeError, ValueError) as exc:
                # The dead executor may fail teardown; the engine state is
                # gone either way, so recovery proceeds — but the failure
                # stays visible instead of vanishing.
                self.teardown_errors.append(exc)
                warnings.warn(
                    f"engine teardown failed during crash recovery: {exc!r}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        shards, executor, workers, transport, admission = self._rebuild
        # latest_valid: a corrupt newest checkpoint only costs extra
        # replay (recovery falls back to an older intact image, or to a
        # from-scratch replay), never a failed or wrong run
        checkpoint = (
            self.checkpoint_store.latest_valid() if self.checkpoint_store else None
        )
        if checkpoint is None:
            # crashed before the first (intact) checkpoint: restart fresh
            if shards == 1 and executor == "serial":
                self.engine = IPD(params, admission=admission)
            else:
                self.engine = ShardedIPD(
                    params,
                    shards=shards,
                    executor=executor,
                    workers=workers,
                    transport=transport,
                    admission=admission,
                )
            self._attach_fault_hook()
            result.sweeps.clear()
            result.snapshots.clear()
            result.flows_processed = 0
            self._resume = None
            return
        self.engine = self.checkpoint_store.restore_engine(
            checkpoint,
            params=params,
            shards=shards,
            executor=executor,
            workers=workers,
            transport=transport,
            admission=admission,
        )
        self._attach_fault_hook()
        # roll the result back to the checkpoint: later sweeps/snapshots
        # will be reproduced exactly by the replay
        del result.sweeps[checkpoint.sweep_count:]
        for when in [ts for ts in result.snapshots if ts > checkpoint.when]:
            del result.snapshots[when]
        result.flows_processed = checkpoint.flows_processed
        self._resume = _ResumeState(
            flows_processed=checkpoint.flows_processed,
            next_sweep=checkpoint.next_sweep,
            next_snapshot=checkpoint.next_snapshot,
        )

    def run_incremental(
        self,
        flows: "Iterable[Union[FlowRecord, FlowBatch]]",
        result: RunResult | None = None,
    ) -> Iterator[tuple[float, list[IPDRecord]]]:
        """Like :meth:`run` but yields ``(time, records)`` per snapshot.

        The stream may mix :class:`FlowRecord` items and columnar
        :class:`FlowBatch` runs; timestamps must be non-decreasing
        across and within items.  A batch spanning a sweep boundary is
        cut at the boundary (binary search on its timestamp column) so
        "all ingest before each sweep tick" holds exactly as in the
        per-flow replay.

        When this pipeline was built by :meth:`resume` (or is replaying
        after crash recovery), the restored cursor takes over: the first
        ``flows_processed`` rows of the stream are skipped and the
        sweep/snapshot grids continue where the checkpoint left them.
        """
        engine = self.engine
        t = engine.params.t
        every = self.checkpoint_every
        store = self.checkpoint_store
        result = result if result is not None else RunResult()
        next_sweep: float | None = None
        next_snapshot: float | None = None
        next_checkpoint: float | None = None
        last_time: float | None = None
        resume, self._resume = self._resume, None
        skip = 0
        if resume is not None:
            skip = resume.flows_processed
            next_sweep = resume.next_sweep
            next_snapshot = resume.next_snapshot
            result.flows_processed = resume.flows_processed
            if store is not None:
                # the checkpointed tick was next_sweep - t; continue the
                # grid strictly after it (that tick is already on disk)
                next_checkpoint = (int((resume.next_sweep - t) // every) + 1) * every

        def _boundary(when: float) -> Iterator[tuple[float, list[IPDRecord]]]:
            # advance sweep/snapshot/checkpoint grids up to `when`
            nonlocal next_sweep, next_snapshot, next_checkpoint
            # callers align the grids at the first flow before boundaries
            assert next_sweep is not None
            sweep_at = next_sweep
            while when >= sweep_at:
                self._tick(sweep_at, result)
                if next_snapshot is not None and sweep_at >= next_snapshot:
                    emitted = self._emit(sweep_at, result)
                    yield emitted.when, emitted.records
                    next_snapshot += self.snapshot_seconds
                if next_checkpoint is not None and sweep_at >= next_checkpoint:
                    # post-sweep barrier: the image is consistent (all
                    # ingest before the tick applied, the sweep settled)
                    self._save_checkpoint(
                        sweep_at, result, sweep_at + t, next_snapshot
                    )
                    while next_checkpoint <= sweep_at:
                        next_checkpoint += every
                sweep_at += t
                next_sweep = sweep_at

        for item in flows:
            if isinstance(item, FlowBatch):
                timestamps = item.timestamps
                if not timestamps:
                    continue
                if skip:
                    rows = len(timestamps)
                    if rows <= skip:
                        skip -= rows
                        continue
                    item = item.slice(skip, rows)
                    timestamps = item.timestamps
                    skip = 0
                first_time = timestamps[0]
                if last_time is not None and first_time < last_time - 1e-9:
                    raise ValueError(
                        "flow stream is not time-ordered: "
                        f"{first_time} after {last_time}"
                    )
                if any(
                    timestamps[i] > timestamps[i + 1]
                    for i in range(len(timestamps) - 1)
                ):
                    raise ValueError("FlowBatch is not time-ordered internally")
                last_time = timestamps[-1]
                if next_sweep is None:
                    next_sweep = (int(first_time // t) + 1) * t
                    next_snapshot = (
                        int(first_time // self.snapshot_seconds) + 1
                    ) * self.snapshot_seconds
                    if store is not None:
                        next_checkpoint = (int(first_time // every) + 1) * every
                start = 0
                total = len(timestamps)
                while start < total:
                    yield from _boundary(timestamps[start])
                    end = bisect_left(timestamps, next_sweep, start)
                    if start == 0 and end == total:
                        engine.ingest_batch(item)
                    else:
                        engine.ingest_batch(item.slice(start, end))
                    result.flows_processed += end - start
                    start = end
                continue
            flow = item
            if skip:
                skip -= 1
                continue
            if last_time is not None and flow.timestamp < last_time - 1e-9:
                raise ValueError(
                    "flow stream is not time-ordered: "
                    f"{flow.timestamp} after {last_time}"
                )
            last_time = flow.timestamp
            if next_sweep is None:
                # Align sweep/snapshot grids to the trace start.
                next_sweep = (int(flow.timestamp // t) + 1) * t
                next_snapshot = (
                    int(flow.timestamp // self.snapshot_seconds) + 1
                ) * self.snapshot_seconds
                if store is not None:
                    next_checkpoint = (int(flow.timestamp // every) + 1) * every
            yield from _boundary(flow.timestamp)
            engine.ingest(flow)
            result.flows_processed += 1

        if last_time is not None and next_sweep is not None:
            # Close the final bucket.
            self._tick(next_sweep, result)
            final = self._emit(next_sweep, result)
            yield final.when, final.records
            if store is not None:
                self._save_checkpoint(
                    next_sweep, result, next_sweep + t, next_snapshot
                )
        elif resume is not None:
            # The checkpoint already covers the entire stream (it was
            # saved at the closing tick): nothing to replay, but the
            # resumed run still yields the final mapping.  No sweep —
            # the checkpointed image is already post-final-sweep.
            replayed = self._emit(resume.next_sweep - t, result)
            yield replayed.when, replayed.records

    def _tick(self, when: float, result: RunResult) -> None:
        if self.fault_hook is not None:
            # the sketch-saturate site is engine-level, so the pipeline
            # fires it for every topology (the engine fans it out to its
            # shards itself); a no-op for engines without admission
            self.fault_hook.before_sweep(self.engine, when)
            if getattr(self.engine, "_executor", None) is None:
                # a sharded engine's executor consults the hook itself at
                # tick_begin; cover the executor-less plain engine here so
                # the worker-crash site exists for every topology
                self.fault_hook.before_tick(None, when)
        report = self.engine.sweep(when)
        result.sweeps.append(report)
        if self.on_sweep is not None:
            self.on_sweep(report, self.engine)

    def _save_checkpoint(
        self,
        when: float,
        result: RunResult,
        next_sweep: float,
        next_snapshot: Optional[float],
    ) -> None:
        assert self.checkpoint_store is not None
        self.checkpoint_store.save(
            Checkpoint(
                when=when,
                flows_processed=result.flows_processed,
                next_sweep=next_sweep,
                next_snapshot=next_snapshot,
                sweep_count=len(result.sweeps),
                engine_blob=self.engine.to_bytes(),
            )
        )

    def _emit(self, when: float, result: RunResult) -> Snapshot:
        records = self.engine.snapshot(
            when, include_unclassified=self.include_unclassified
        )
        result.snapshots[when] = records
        self._epoch += 1
        snapshot = Snapshot(when, records, epoch=self._epoch, source="pipeline")
        if self.fault_hook is not None:
            self.fault_hook.on_sink_emit(when)
        for sink in self.sinks:
            sink.emit(snapshot)
        return snapshot

    # ------------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Flush sinks and shut down executor workers (idempotent).

        Sinks are closed exactly once per pipeline, whichever path gets
        here first — normal teardown, the context-manager exit, or an
        explicit close after crash recovery; :meth:`Sink.close` is
        itself idempotent as a second line of defense.
        """
        if not self._sinks_closed:
            self._sinks_closed = True
            for sink in self.sinks:
                sink.close()
        close = getattr(self.engine, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "Pipeline":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
