"""Interchangeable executors for the sharded runtime.

The coordinator (:class:`~repro.runtime.sharding.ShardedIPD`) speaks one
small protocol — ``feed`` batches to a shard, ``tick`` all shards,
``apply`` seed/reset ops, ``snapshot``, ``metrics``, ``close`` — and the
three executors implement it with different parallelism:

* :class:`SerialExecutor` — everything in the calling thread, fully
  deterministic; the reference implementation the equivalence suite
  pins the others against.
* :class:`ThreadedExecutor` — one worker thread per slot, command
  queues in, reply queues out.  Threads share the interpreter (GIL), so
  this buys overlap with I/O and with the aggregator's own sweep, not
  raw ingest parallelism; it supersedes the old ``ThreadedIPD`` layout.
* :class:`MultiprocessExecutor` — one worker process per slot connected
  by a duplex pipe; :class:`~repro.netflow.records.FlowBatch` columns
  are pickled across.  This is the executor that actually multiplies
  single-core ingest throughput.

Every executor carries a ``fault_hook`` attribute (default ``None``)
— the testkit's chaos seam.  When set to a
:class:`~repro.testkit.faults.FaultPlan`, the hook is consulted at two
named injection sites: ``feed`` (a batch may be dropped or delivered
twice) and ``tick_begin`` (a worker crash may be injected).  Unset, each
site costs a single identity check on paths that are already dominated
by queue/pipe traffic, so production behaviour is unchanged.

Shard *index* → worker *slot* is a fixed ``index % workers`` mapping,
and each worker handles its commands strictly in order (FIFO per pipe /
queue), so no acknowledgement round-trips are needed for ``feed`` and
``apply``: a later ``tick``/``snapshot``/``metrics`` reply implies every
earlier command was applied.  Tick replies are a barrier; state
evolution is therefore identical across executors — only wall-clock
interleaving differs.
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING, Iterable, Optional, Union

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

from ..core.output import IPDRecord
from ..core.params import IPDParams
from ..netflow.records import FlowBatch
from .faulthook import FaultHookLike
from .shards import ShardEngine, ShardMetrics, ShardTickResult

__all__ = [
    "SerialExecutor",
    "ThreadedExecutor",
    "MultiprocessExecutor",
    "WorkerCrashError",
    "make_executor",
    "EXECUTOR_KINDS",
]

EXECUTOR_KINDS = ("serial", "threaded", "mp")


class WorkerCrashError(RuntimeError):
    """A shard worker process died mid-run (pipe broken or closed).

    Raised by :class:`MultiprocessExecutor` instead of the raw OS-level
    error so the pipeline's recovery path can catch one well-known type,
    tear the executor down, and rebuild the engine from its last
    checkpoint.
    """


class ShardWorker:
    """The engines owned by one worker slot, plus the command dispatcher.

    Shared verbatim by all three executors: the serial executor calls
    :meth:`handle` inline, the threaded executor from a worker thread,
    the multiprocessing executor inside a worker process.
    """

    def __init__(self, params: IPDParams, depth: int) -> None:
        self.params = params
        self.depth = depth
        self.engines: dict[int, ShardEngine] = {}

    def engine(self, index: int) -> ShardEngine:
        engine = self.engines.get(index)
        if engine is None:
            engine = self.engines[index] = ShardEngine(
                self.params, self.depth, index
            )
        return engine

    def handle(self, cmd: tuple) -> object:
        """Process one command; returns the reply or ``None`` (no reply)."""
        kind = cmd[0]
        if kind == "feed":
            self.engine(cmd[1]).ingest_batch(cmd[2])
            return None
        if kind == "ops":
            for op in cmd[1]:
                self.engine(op[1]).apply_op(op)
            return None
        if kind == "tick":
            now = cmd[1]
            return {
                index: engine.tick(now)
                for index, engine in sorted(self.engines.items())
            }
        if kind == "snapshot":
            records: list[IPDRecord] = []
            for __, engine in sorted(self.engines.items()):
                records.extend(engine.snapshot(cmd[1], cmd[2]))
            return records
        if kind == "metrics":
            metrics = ShardMetrics()
            for engine in self.engines.values():
                metrics.add(engine.metrics())
            return metrics
        if kind == "export":
            return {
                index: engine.export()
                for index, engine in sorted(self.engines.items())
            }
        raise ValueError(f"unknown executor command: {kind!r}")


class SerialExecutor:
    """All shards in the calling thread — the deterministic reference."""

    kind = "serial"

    def __init__(self, params: IPDParams, depth: int, workers: int = 1) -> None:
        self._worker = ShardWorker(params, depth)
        self._tick_results: Optional[dict[int, ShardTickResult]] = None
        self.fault_hook: Optional[FaultHookLike] = None

    def feed(self, index: int, batch: FlowBatch) -> None:
        if self.fault_hook is not None:
            action = self.fault_hook.on_feed(index, batch)
            if action == "drop":
                return
            if action == "duplicate":
                self._worker.handle(("feed", index, batch))
        self._worker.handle(("feed", index, batch))

    def apply(self, ops: Iterable[tuple]) -> None:
        self._worker.handle(("ops", list(ops)))

    def tick_begin(self, now: float) -> None:
        if self.fault_hook is not None:
            self.fault_hook.before_tick(self, now)
        self._tick_results = self._worker.handle(("tick", now))

    def tick_collect(self) -> dict[int, ShardTickResult]:
        results, self._tick_results = self._tick_results, None
        assert results is not None
        return results

    def snapshot(self, now: float, include_unclassified: bool) -> list[IPDRecord]:
        return self._worker.handle(("snapshot", now, include_unclassified))

    def metrics(self) -> ShardMetrics:
        return self._worker.handle(("metrics",))

    def export(self) -> dict[int, dict[int, bytes]]:
        return self._worker.handle(("export",))

    def close(self) -> None:
        pass


class ThreadedExecutor:
    """One worker thread per slot; queues in, reply queues out."""

    kind = "threaded"

    def __init__(self, params: IPDParams, depth: int, workers: int = 2) -> None:
        self.workers = max(1, workers)
        self._commands: list[queue.SimpleQueue] = []
        self._replies: list[queue.SimpleQueue] = []
        self._threads: list[threading.Thread] = []
        for slot in range(self.workers):
            commands: queue.SimpleQueue = queue.SimpleQueue()
            replies: queue.SimpleQueue = queue.SimpleQueue()
            thread = threading.Thread(
                target=_thread_worker_loop,
                args=(params, depth, commands, replies),
                name=f"ipd-shard-{slot}",
                daemon=True,
            )
            thread.start()
            self._commands.append(commands)
            self._replies.append(replies)
            self._threads.append(thread)
        self._closed = False
        self.fault_hook: Optional[FaultHookLike] = None

    def _slot(self, index: int) -> int:
        return index % self.workers

    def feed(self, index: int, batch: FlowBatch) -> None:
        if self.fault_hook is not None:
            action = self.fault_hook.on_feed(index, batch)
            if action == "drop":
                return
            if action == "duplicate":
                self._commands[self._slot(index)].put(("feed", index, batch))
        self._commands[self._slot(index)].put(("feed", index, batch))

    def apply(self, ops: Iterable[tuple]) -> None:
        by_slot: dict[int, list[tuple]] = {}
        for op in ops:
            by_slot.setdefault(self._slot(op[1]), []).append(op)
        for slot, slot_ops in by_slot.items():
            self._commands[slot].put(("ops", slot_ops))

    def tick_begin(self, now: float) -> None:
        if self.fault_hook is not None:
            self.fault_hook.before_tick(self, now)
        for commands in self._commands:
            commands.put(("tick", now))

    def tick_collect(self) -> dict[int, ShardTickResult]:
        results: dict[int, ShardTickResult] = {}
        for replies in self._replies:
            results.update(replies.get())
        return results

    def snapshot(self, now: float, include_unclassified: bool) -> list[IPDRecord]:
        for commands in self._commands:
            commands.put(("snapshot", now, include_unclassified))
        records: list[IPDRecord] = []
        for replies in self._replies:
            records.extend(replies.get())
        return records

    def metrics(self) -> ShardMetrics:
        for commands in self._commands:
            commands.put(("metrics",))
        metrics = ShardMetrics()
        for replies in self._replies:
            metrics.add(replies.get())
        return metrics

    def export(self) -> dict[int, dict[int, bytes]]:
        for commands in self._commands:
            commands.put(("export",))
        exports: dict[int, dict[int, bytes]] = {}
        for replies in self._replies:
            exports.update(replies.get())
        return exports

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for commands in self._commands:
            commands.put(("stop",))
        for thread in self._threads:
            thread.join(timeout=10.0)


def _thread_worker_loop(
    params: IPDParams,
    depth: int,
    commands: queue.SimpleQueue,
    replies: queue.SimpleQueue,
) -> None:
    worker = ShardWorker(params, depth)
    while True:
        cmd = commands.get()
        if cmd[0] == "stop":
            return
        reply = worker.handle(cmd)
        if reply is not None:
            replies.put(reply)


def _mp_worker_main(
    conn: "Connection", params: IPDParams, depth: int
) -> None:
    """Worker-process entry point (module-level: must be picklable)."""
    worker = ShardWorker(params, depth)
    while True:
        try:
            cmd = conn.recv()
        except EOFError:
            return
        if cmd[0] == "stop":
            conn.close()
            return
        reply = worker.handle(cmd)
        if reply is not None:
            conn.send(reply)


class MultiprocessExecutor:
    """One worker process per slot, duplex pipes carrying FlowBatch columns."""

    kind = "mp"

    def __init__(self, params: IPDParams, depth: int, workers: int = 2) -> None:
        import multiprocessing

        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        self.workers = max(1, workers)
        self._conns = []
        self._processes = []
        for slot in range(self.workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=_mp_worker_main,
                args=(child_conn, params, depth),
                name=f"ipd-shard-{slot}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._processes.append(process)
        self._closed = False
        self.fault_hook: Optional[FaultHookLike] = None

    def _slot(self, index: int) -> int:
        return index % self.workers

    def _send(self, slot: int, cmd: tuple) -> None:
        try:
            self._conns[slot].send(cmd)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise WorkerCrashError(
                f"shard worker {slot} is gone ({exc!r})"
            ) from exc

    def _recv(self, slot: int) -> object:
        try:
            return self._conns[slot].recv()
        except (EOFError, ConnectionResetError, OSError) as exc:
            raise WorkerCrashError(
                f"shard worker {slot} died before replying ({exc!r})"
            ) from exc

    def feed(self, index: int, batch: FlowBatch) -> None:
        if self.fault_hook is not None:
            action = self.fault_hook.on_feed(index, batch)
            if action == "drop":
                return
            if action == "duplicate":
                self._send(self._slot(index), ("feed", index, batch))
        self._send(self._slot(index), ("feed", index, batch))

    def apply(self, ops: Iterable[tuple]) -> None:
        by_slot: dict[int, list[tuple]] = {}
        for op in ops:
            by_slot.setdefault(self._slot(op[1]), []).append(op)
        for slot, slot_ops in by_slot.items():
            self._send(slot, ("ops", slot_ops))

    def tick_begin(self, now: float) -> None:
        if self.fault_hook is not None:
            self.fault_hook.before_tick(self, now)
        for slot in range(self.workers):
            self._send(slot, ("tick", now))

    def tick_collect(self) -> dict[int, ShardTickResult]:
        results: dict[int, ShardTickResult] = {}
        for slot in range(self.workers):
            results.update(self._recv(slot))
        return results

    def snapshot(self, now: float, include_unclassified: bool) -> list[IPDRecord]:
        for slot in range(self.workers):
            self._send(slot, ("snapshot", now, include_unclassified))
        records: list[IPDRecord] = []
        for slot in range(self.workers):
            records.extend(self._recv(slot))
        return records

    def metrics(self) -> ShardMetrics:
        for slot in range(self.workers):
            self._send(slot, ("metrics",))
        metrics = ShardMetrics()
        for slot in range(self.workers):
            metrics.add(self._recv(slot))
        return metrics

    def export(self) -> dict[int, dict[int, bytes]]:
        for slot in range(self.workers):
            self._send(slot, ("export",))
        exports: dict[int, dict[int, bytes]] = {}
        for slot in range(self.workers):
            exports.update(self._recv(slot))
        return exports

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):  # worker already gone
                pass
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        for conn in self._conns:
            conn.close()


def make_executor(
    kind: str, params: IPDParams, depth: int, workers: Optional[int] = None
) -> "Union[SerialExecutor, ThreadedExecutor, MultiprocessExecutor]":
    """Build an executor by name (``serial`` / ``threaded`` / ``mp``)."""
    if kind == "serial":
        return SerialExecutor(params, depth)
    if kind == "threaded":
        return ThreadedExecutor(params, depth, workers or 2)
    if kind == "mp":
        if workers is None:
            import os

            workers = min(4, os.cpu_count() or 1)
        return MultiprocessExecutor(params, depth, workers)
    raise ValueError(
        f"unknown executor {kind!r}; expected one of {EXECUTOR_KINDS}"
    )
