"""Interchangeable executors for the sharded runtime.

The coordinator (:class:`~repro.runtime.sharding.ShardedIPD`) speaks one
small protocol — ``feed`` batches to a shard, ``tick`` all shards,
``apply`` seed/reset ops, ``snapshot``, ``metrics``, ``close`` — and the
three executors implement it with different parallelism:

* :class:`SerialExecutor` — everything in the calling thread, fully
  deterministic; the reference implementation the equivalence suite
  pins the others against.
* :class:`ThreadedExecutor` — one worker thread per slot, command
  queues in, reply queues out.  Threads share the interpreter (GIL), so
  this buys overlap with I/O and with the aggregator's own sweep, not
  raw ingest parallelism; it supersedes the old ``ThreadedIPD`` layout.
* :class:`MultiprocessExecutor` — one worker process per slot.  The
  control plane (tick/snapshot/metrics/export and their replies) is a
  duplex pipe; the data plane is selected by ``transport``:
  ``"pickle"`` ships :class:`~repro.netflow.records.FlowBatch` columns
  and shard ops pickled over the same pipe (the legacy transport),
  ``"shm"`` encodes them with the binary wire codec
  (:mod:`repro.netflow.wirecodec`) straight into a per-slot
  shared-memory ring (:mod:`repro.runtime.shmring`) — written once by
  the router, read once by the worker, no pickling in between.  This
  is the executor that actually multiplies single-core ingest
  throughput.

Every executor carries a ``fault_hook`` attribute (default ``None``)
— the testkit's chaos seam.  When set to a
:class:`~repro.testkit.faults.FaultPlan`, the hook is consulted at
named injection sites: ``feed`` (a batch may be dropped or delivered
twice), ``tick_begin`` (a worker crash may be injected), and — shm
transport only — ``shm_feed`` (a forced backpressure stall or a
corrupted frame).  Unset, each site costs a single identity check on
paths that are already dominated by queue/pipe traffic, so production
behaviour is unchanged.

Shard *index* → worker *slot* is a fixed ``index % workers`` mapping,
and each worker handles its commands strictly in order (FIFO per pipe /
queue), so no acknowledgement round-trips are needed for ``feed`` and
``apply``: a later ``tick``/``snapshot``/``metrics`` reply implies every
earlier command was applied.  Tick replies are a barrier; state
evolution is therefore identical across executors — only wall-clock
interleaving differs.  The shm transport keeps the same contract: feeds
and shard ops travel the ring in commit order, and every control-plane
command carries the ring's committed-frame watermark, which the worker
drains up to before executing the command.
"""

from __future__ import annotations

import queue
import struct
import threading
from typing import TYPE_CHECKING, Iterable, Optional, Union

if TYPE_CHECKING:
    from multiprocessing.connection import Connection

from ..core.admission import AdmissionConfig, AdmissionImage
from ..core.output import IPDRecord
from ..core.params import IPDParams
from ..netflow.records import FlowBatch
from ..netflow.wirecodec import FlowBatchDecoder, FlowBatchEncoder, WireCodecError
from .faulthook import FaultHookLike
from .shards import ShardEngine, ShardMetrics, ShardTickResult
from .shmring import FRAME_FEED, FRAME_OPS, ShmRing, ShmRingError

__all__ = [
    "SerialExecutor",
    "ThreadedExecutor",
    "MultiprocessExecutor",
    "WorkerCrashError",
    "make_executor",
    "EXECUTOR_KINDS",
    "TRANSPORT_KINDS",
]

EXECUTOR_KINDS = ("serial", "threaded", "mp")
TRANSPORT_KINDS = ("pickle", "shm")

#: ring bytes per worker slot; a single frame (one encoded batch or one
#: shard-handoff blob) must fit — router batches top out around 0.5 MiB
#: at the 8192-row flush threshold, so 4 MiB leaves generous headroom
_RING_CAPACITY = 1 << 22

#: forced-full probes injected by a chaos ``shm_ring_full`` fault
_FAULT_STALL_CHECKS = 5

#: producer stall iterations between worker liveness checks (~10 ms)
_LIVENESS_EVERY = 50

#: seconds the shm worker waits on the pipe before re-polling the ring
_SHM_IDLE_POLL_SECONDS = 0.001

_U32 = struct.Struct("<I")
#: shm op-frame prefix: op tag, shard index, address-family version
#: (version is 0 for admission ops, which are family-agnostic)
_OP_HEADER = struct.Struct("<BIB")
_OP_SEED = 1
_OP_RESET = 2
_OP_ADMISSION = 3
_OP_SATURATE = 4


class WorkerCrashError(RuntimeError):
    """A shard worker process died mid-run (pipe broken or closed).

    Raised by :class:`MultiprocessExecutor` instead of the raw OS-level
    error so the pipeline's recovery path can catch one well-known type,
    tear the executor down, and rebuild the engine from its last
    checkpoint.
    """


class ShardWorker:
    """The engines owned by one worker slot, plus the command dispatcher.

    Shared verbatim by all three executors: the serial executor calls
    :meth:`handle` inline, the threaded executor from a worker thread,
    the multiprocessing executor inside a worker process.
    """

    def __init__(
        self,
        params: IPDParams,
        depth: int,
        admission: Optional[AdmissionConfig] = None,
    ) -> None:
        self.params = params
        self.depth = depth
        self.admission = admission
        self.engines: dict[int, ShardEngine] = {}

    def engine(self, index: int) -> ShardEngine:
        engine = self.engines.get(index)
        if engine is None:
            engine = self.engines[index] = ShardEngine(
                self.params, self.depth, index, admission=self.admission
            )
        return engine

    def handle(self, cmd: tuple) -> object:
        """Process one command; returns the reply or ``None`` (no reply)."""
        kind = cmd[0]
        if kind == "feed":
            self.engine(cmd[1]).ingest_batch(cmd[2])
            return None
        if kind == "ops":
            for op in cmd[1]:
                self.engine(op[1]).apply_op(op)
            return None
        if kind == "tick":
            now = cmd[1]
            return {
                index: engine.tick(now)
                for index, engine in sorted(self.engines.items())
            }
        if kind == "snapshot":
            records: list[IPDRecord] = []
            for __, engine in sorted(self.engines.items()):
                records.extend(engine.snapshot(cmd[1], cmd[2]))
            return records
        if kind == "metrics":
            metrics = ShardMetrics()
            for engine in self.engines.values():
                metrics.add(engine.metrics())
            return metrics
        if kind == "export":
            return {
                index: engine.export()
                for index, engine in sorted(self.engines.items())
            }
        if kind == "admission_export":
            return {
                index: engine.admission_image()
                for index, engine in sorted(self.engines.items())
            }
        raise ValueError(f"unknown executor command: {kind!r}")


class SerialExecutor:
    """All shards in the calling thread — the deterministic reference."""

    kind = "serial"

    def __init__(
        self,
        params: IPDParams,
        depth: int,
        workers: int = 1,
        admission: Optional[AdmissionConfig] = None,
    ) -> None:
        self._worker = ShardWorker(params, depth, admission=admission)
        self._tick_results: Optional[dict[int, ShardTickResult]] = None
        self.fault_hook: Optional[FaultHookLike] = None

    def feed(self, index: int, batch: FlowBatch) -> None:
        if self.fault_hook is not None:
            action = self.fault_hook.on_feed(index, batch)
            if action == "drop":
                return
            if action == "duplicate":
                self._worker.handle(("feed", index, batch))
        self._worker.handle(("feed", index, batch))

    def apply(self, ops: Iterable[tuple]) -> None:
        self._worker.handle(("ops", list(ops)))

    def tick_begin(self, now: float) -> None:
        if self.fault_hook is not None:
            self.fault_hook.before_tick(self, now)
        self._tick_results = self._worker.handle(("tick", now))

    def tick_collect(self) -> dict[int, ShardTickResult]:
        results, self._tick_results = self._tick_results, None
        assert results is not None
        return results

    def snapshot(self, now: float, include_unclassified: bool) -> list[IPDRecord]:
        return self._worker.handle(("snapshot", now, include_unclassified))

    def metrics(self) -> ShardMetrics:
        return self._worker.handle(("metrics",))

    def export(self) -> dict[int, dict[int, bytes]]:
        return self._worker.handle(("export",))

    def admission_export(self) -> dict[int, Optional[AdmissionImage]]:
        return self._worker.handle(("admission_export",))

    def close(self) -> None:
        pass


class ThreadedExecutor:
    """One worker thread per slot; queues in, reply queues out."""

    kind = "threaded"

    def __init__(
        self,
        params: IPDParams,
        depth: int,
        workers: int = 2,
        admission: Optional[AdmissionConfig] = None,
    ) -> None:
        self.workers = max(1, workers)
        self._commands: list[queue.SimpleQueue] = []
        self._replies: list[queue.SimpleQueue] = []
        self._threads: list[threading.Thread] = []
        for slot in range(self.workers):
            commands: queue.SimpleQueue = queue.SimpleQueue()
            replies: queue.SimpleQueue = queue.SimpleQueue()
            thread = threading.Thread(
                target=_thread_worker_loop,
                args=(params, depth, admission, commands, replies),
                name=f"ipd-shard-{slot}",
                daemon=True,
            )
            thread.start()
            self._commands.append(commands)
            self._replies.append(replies)
            self._threads.append(thread)
        self._closed = False
        self.fault_hook: Optional[FaultHookLike] = None

    def _slot(self, index: int) -> int:
        return index % self.workers

    def feed(self, index: int, batch: FlowBatch) -> None:
        if self.fault_hook is not None:
            action = self.fault_hook.on_feed(index, batch)
            if action == "drop":
                return
            if action == "duplicate":
                self._commands[self._slot(index)].put(("feed", index, batch))
        self._commands[self._slot(index)].put(("feed", index, batch))

    def apply(self, ops: Iterable[tuple]) -> None:
        by_slot: dict[int, list[tuple]] = {}
        for op in ops:
            by_slot.setdefault(self._slot(op[1]), []).append(op)
        for slot, slot_ops in by_slot.items():
            self._commands[slot].put(("ops", slot_ops))

    def tick_begin(self, now: float) -> None:
        if self.fault_hook is not None:
            self.fault_hook.before_tick(self, now)
        for commands in self._commands:
            commands.put(("tick", now))

    def tick_collect(self) -> dict[int, ShardTickResult]:
        results: dict[int, ShardTickResult] = {}
        for replies in self._replies:
            results.update(replies.get())
        return results

    def snapshot(self, now: float, include_unclassified: bool) -> list[IPDRecord]:
        for commands in self._commands:
            commands.put(("snapshot", now, include_unclassified))
        records: list[IPDRecord] = []
        for replies in self._replies:
            records.extend(replies.get())
        return records

    def metrics(self) -> ShardMetrics:
        for commands in self._commands:
            commands.put(("metrics",))
        metrics = ShardMetrics()
        for replies in self._replies:
            metrics.add(replies.get())
        return metrics

    def export(self) -> dict[int, dict[int, bytes]]:
        for commands in self._commands:
            commands.put(("export",))
        exports: dict[int, dict[int, bytes]] = {}
        for replies in self._replies:
            exports.update(replies.get())
        return exports

    def admission_export(self) -> dict[int, Optional[AdmissionImage]]:
        for commands in self._commands:
            commands.put(("admission_export",))
        images: dict[int, Optional[AdmissionImage]] = {}
        for replies in self._replies:
            images.update(replies.get())
        return images

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for commands in self._commands:
            commands.put(("stop",))
        for thread in self._threads:
            thread.join(timeout=10.0)


def _thread_worker_loop(
    params: IPDParams,
    depth: int,
    admission: Optional[AdmissionConfig],
    commands: queue.SimpleQueue,
    replies: queue.SimpleQueue,
) -> None:
    worker = ShardWorker(params, depth, admission=admission)
    while True:
        cmd = commands.get()
        if cmd[0] == "stop":
            return
        reply = worker.handle(cmd)
        if reply is not None:
            replies.put(reply)


def _mp_worker_main(
    conn: "Connection",
    params: IPDParams,
    depth: int,
    admission: Optional[AdmissionConfig] = None,
) -> None:
    """Pickle-transport worker entry (module-level: must be picklable)."""
    worker = ShardWorker(params, depth, admission=admission)
    while True:
        try:
            cmd = conn.recv()
        except EOFError:
            return
        if cmd[0] == "stop":
            conn.close()
            return
        reply = worker.handle(cmd)
        if reply is not None:
            conn.send(reply)


def _apply_shm_frame(
    worker: ShardWorker,
    decoder: FlowBatchDecoder,
    kind: int,
    payload: memoryview,
) -> None:
    """Decode one ring frame and apply it — straight off shared memory."""
    if kind == FRAME_FEED:
        (index,) = _U32.unpack_from(payload, 0)
        worker.handle(("feed", index, decoder.decode_from(payload[4:])))
    elif kind == FRAME_OPS:
        tag, index, version = _OP_HEADER.unpack_from(payload, 0)
        if tag == _OP_SEED:
            (length,) = _U32.unpack_from(payload, _OP_HEADER.size)
            start = _OP_HEADER.size + 4
            blob = payload[start:start + length]
            worker.handle(("ops", [("seed", index, version, blob)]))
        elif tag == _OP_RESET:
            worker.handle(("ops", [("reset", index, version)]))
        elif tag == _OP_ADMISSION:
            (length,) = _U32.unpack_from(payload, _OP_HEADER.size)
            start = _OP_HEADER.size + 4
            blob = payload[start:start + length]
            worker.handle(("ops", [("admission", index, 0, blob)]))
        elif tag == _OP_SATURATE:
            worker.handle(("ops", [("saturate", index, 0)]))
        else:
            raise ShmRingError(f"unknown shard-op tag {tag}")
    else:
        raise ShmRingError(f"unexpected frame kind {kind}")


def _mp_worker_shm_main(
    conn: "Connection",
    ring_name: str,
    params: IPDParams,
    depth: int,
    admission: Optional[AdmissionConfig] = None,
) -> None:
    """Shm-transport worker entry: drain the ring, obey pipe barriers.

    Ring frames (feeds and shard ops) are applied as they arrive; a
    pipe command carries the producer's committed-frame watermark and
    executes only once the ring has been drained that far, which is
    what preserves the feed-before-barrier ordering contract.  Any
    transport damage — a CRC failure, an undecodable frame — exits the
    process, so the parent's next barrier raises
    :class:`WorkerCrashError` and checkpoint recovery takes over.
    """
    ring = ShmRing(name=ring_name)
    worker = ShardWorker(params, depth, admission=admission)
    decoder = FlowBatchDecoder()
    consumed = 0
    try:
        while True:
            frame = ring.try_recv()
            if frame is not None:
                seq, kind, payload = frame
                _apply_shm_frame(worker, decoder, kind, payload)
                consumed = seq
                continue
            if not conn.poll(_SHM_IDLE_POLL_SECONDS):
                continue
            try:
                cmd = conn.recv()
            except EOFError:
                return
            watermark = cmd[-1]
            while consumed < watermark:
                seq, kind, payload = ring.recv()
                _apply_shm_frame(worker, decoder, kind, payload)
                consumed = seq
            if cmd[0] == "stop":
                conn.close()
                return
            reply = worker.handle(cmd[:-1])
            if reply is not None:
                conn.send(reply)
    except (ShmRingError, WireCodecError):
        # transport damage: die quietly — the parent's next barrier
        # turns the closed pipe into a WorkerCrashError and recovery
        # rebuilds this worker from the last checkpoint
        return
    finally:
        ring.close()


class MultiprocessExecutor:
    """One worker process per slot; pipe control plane, selectable data plane."""

    kind = "mp"

    def __init__(
        self,
        params: IPDParams,
        depth: int,
        workers: int = 2,
        transport: str = "pickle",
        admission: Optional[AdmissionConfig] = None,
    ) -> None:
        import multiprocessing

        if transport not in TRANSPORT_KINDS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of "
                f"{TRANSPORT_KINDS}"
            )
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context()
        self.workers = max(1, workers)
        self.transport = transport
        self._conns = []
        self._processes = []
        self._rings: list[ShmRing] = []
        self._encoders: list[FlowBatchEncoder] = []
        for slot in range(self.workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            if transport == "shm":
                ring = ShmRing(capacity=_RING_CAPACITY)
                self._rings.append(ring)
                self._encoders.append(FlowBatchEncoder())
                process = ctx.Process(
                    target=_mp_worker_shm_main,
                    args=(child_conn, ring.name, params, depth, admission),
                    name=f"ipd-shard-{slot}",
                    daemon=True,
                )
            else:
                process = ctx.Process(
                    target=_mp_worker_main,
                    args=(child_conn, params, depth, admission),
                    name=f"ipd-shard-{slot}",
                    daemon=True,
                )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._processes.append(process)
        self._closed = False
        self.fault_hook: Optional[FaultHookLike] = None

    def _slot(self, index: int) -> int:
        return index % self.workers

    def _send(self, slot: int, cmd: tuple) -> None:
        try:
            self._conns[slot].send(cmd)
        except (BrokenPipeError, ConnectionResetError, OSError) as exc:
            raise WorkerCrashError(
                f"shard worker {slot} is gone ({exc!r})"
            ) from exc

    def _recv(self, slot: int) -> object:
        try:
            return self._conns[slot].recv()
        except (EOFError, ConnectionResetError, OSError) as exc:
            raise WorkerCrashError(
                f"shard worker {slot} died before replying ({exc!r})"
            ) from exc

    def _barrier_send(self, slot: int, cmd: tuple) -> None:
        """Send a control-plane command, stamped with the ring watermark."""
        if self.transport == "shm":
            cmd = cmd + (self._rings[slot].sequence,)
        self._send(slot, cmd)

    def _reserve(self, slot: int, kind: int, size: int) -> memoryview:
        """Ring reservation that notices a dead worker during backpressure."""
        process = self._processes[slot]

        def on_stall(spins: int) -> None:
            if spins % _LIVENESS_EVERY == 0 and not process.is_alive():
                raise WorkerCrashError(
                    f"shard worker {slot} died while its ring was full"
                )

        return self._rings[slot].reserve(kind, size, on_stall=on_stall)

    def feed(self, index: int, batch: FlowBatch) -> None:
        if self.fault_hook is not None:
            action = self.fault_hook.on_feed(index, batch)
            if action == "drop":
                return
            if action == "duplicate":
                self._feed_once(index, batch)
        self._feed_once(index, batch)

    def _feed_once(self, index: int, batch: FlowBatch) -> None:
        if self.transport != "shm":
            self._send(self._slot(index), ("feed", index, batch))
            return
        slot = self._slot(index)
        corrupt = False
        if self.fault_hook is not None:
            action = self.fault_hook.on_shm_feed(slot)
            if action == "stall":
                self._rings[slot].force_stall(_FAULT_STALL_CHECKS)
            elif action == "corrupt":
                corrupt = True
        encoder = self._encoders[slot]
        view = self._reserve(slot, FRAME_FEED, 4 + encoder.measure(batch))
        try:
            _U32.pack_into(view, 0, index)
            encoder.encode_into(batch, view[4:])
        except Exception:
            self._rings[slot].abort(view)
            raise
        self._rings[slot].commit(view, corrupt=corrupt)

    def apply(self, ops: Iterable[tuple]) -> None:
        if self.transport == "shm":
            for op in ops:
                self._apply_shm_op(op)
            return
        by_slot: dict[int, list[tuple]] = {}
        for op in ops:
            by_slot.setdefault(self._slot(op[1]), []).append(op)
        for slot, slot_ops in by_slot.items():
            self._send(slot, ("ops", slot_ops))

    def _apply_shm_op(self, op: tuple) -> None:
        slot = self._slot(op[1])
        if op[0] == "seed":
            payload = op[3]
            size = _OP_HEADER.size + 4 + len(payload)
            view = self._reserve(slot, FRAME_OPS, size)
            try:
                _OP_HEADER.pack_into(view, 0, _OP_SEED, op[1], op[2])
                _U32.pack_into(view, _OP_HEADER.size, len(payload))
                view[_OP_HEADER.size + 4:] = payload
            except Exception:
                self._rings[slot].abort(view)
                raise
        elif op[0] == "reset":
            view = self._reserve(slot, FRAME_OPS, _OP_HEADER.size)
            try:
                _OP_HEADER.pack_into(view, 0, _OP_RESET, op[1], op[2])
            except Exception:
                self._rings[slot].abort(view)
                raise
        elif op[0] == "admission":
            payload = op[3]
            size = _OP_HEADER.size + 4 + len(payload)
            view = self._reserve(slot, FRAME_OPS, size)
            try:
                _OP_HEADER.pack_into(view, 0, _OP_ADMISSION, op[1], 0)
                _U32.pack_into(view, _OP_HEADER.size, len(payload))
                view[_OP_HEADER.size + 4:] = payload
            except Exception:
                self._rings[slot].abort(view)
                raise
        elif op[0] == "saturate":
            view = self._reserve(slot, FRAME_OPS, _OP_HEADER.size)
            try:
                _OP_HEADER.pack_into(view, 0, _OP_SATURATE, op[1], 0)
            except Exception:
                self._rings[slot].abort(view)
                raise
        else:
            raise ValueError(f"unknown shard op: {op[0]!r}")
        self._rings[slot].commit(view)

    def tick_begin(self, now: float) -> None:
        if self.fault_hook is not None:
            self.fault_hook.before_tick(self, now)
        for slot in range(self.workers):
            self._barrier_send(slot, ("tick", now))

    def tick_collect(self) -> dict[int, ShardTickResult]:
        results: dict[int, ShardTickResult] = {}
        for slot in range(self.workers):
            results.update(self._recv(slot))
        return results

    def snapshot(self, now: float, include_unclassified: bool) -> list[IPDRecord]:
        for slot in range(self.workers):
            self._barrier_send(slot, ("snapshot", now, include_unclassified))
        records: list[IPDRecord] = []
        for slot in range(self.workers):
            records.extend(self._recv(slot))
        return records

    def metrics(self) -> ShardMetrics:
        for slot in range(self.workers):
            self._barrier_send(slot, ("metrics",))
        metrics = ShardMetrics()
        for slot in range(self.workers):
            metrics.add(self._recv(slot))
        return metrics

    def export(self) -> dict[int, dict[int, bytes]]:
        for slot in range(self.workers):
            self._barrier_send(slot, ("export",))
        exports: dict[int, dict[int, bytes]] = {}
        for slot in range(self.workers):
            exports.update(self._recv(slot))
        return exports

    def admission_export(self) -> dict[int, Optional[AdmissionImage]]:
        for slot in range(self.workers):
            self._barrier_send(slot, ("admission_export",))
        images: dict[int, Optional[AdmissionImage]] = {}
        for slot in range(self.workers):
            images.update(self._recv(slot))
        return images

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for slot, conn in enumerate(self._conns):
            cmd: tuple = ("stop",)
            if self.transport == "shm":
                cmd = ("stop", self._rings[slot].sequence)
            try:
                conn.send(cmd)
            except (BrokenPipeError, OSError):  # worker already gone
                pass
        for process in self._processes:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
        for conn in self._conns:
            conn.close()
        for ring in self._rings:
            ring.close()
            ring.unlink()


def make_executor(
    kind: str,
    params: IPDParams,
    depth: int,
    workers: Optional[int] = None,
    transport: str = "pickle",
    admission: Optional[AdmissionConfig] = None,
) -> "Union[SerialExecutor, ThreadedExecutor, MultiprocessExecutor]":
    """Build an executor by name (``serial`` / ``threaded`` / ``mp``)."""
    if transport not in TRANSPORT_KINDS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of "
            f"{TRANSPORT_KINDS}"
        )
    if kind != "mp" and transport != "pickle":
        raise ValueError(
            f"transport {transport!r} applies only to the mp executor"
        )
    if kind == "serial":
        return SerialExecutor(params, depth, admission=admission)
    if kind == "threaded":
        return ThreadedExecutor(params, depth, workers or 2, admission=admission)
    if kind == "mp":
        if workers is None:
            import os

            workers = min(4, os.cpu_count() or 1)
        return MultiprocessExecutor(
            params, depth, workers, transport, admission=admission
        )
    raise ValueError(
        f"unknown executor {kind!r}; expected one of {EXECUTOR_KINDS}"
    )
