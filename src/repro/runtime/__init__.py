"""The pipeline runtime: Source → Router → engine shards → Merger → Sinks.

One execution surface for every way of running IPD:

* :class:`~repro.runtime.pipeline.Pipeline` — deterministic offline
  replay (simulated time), single-engine or address-space-sharded.
* :class:`~repro.runtime.live.LivePipeline` — the deployment's
  wall-clock two-thread layout over the same engines.
* :class:`~repro.runtime.sharding.ShardedIPD` — the shard coordinator
  itself, usable directly wherever an :class:`~repro.core.algorithm.IPD`
  is expected.
* executors (``serial`` / ``threaded`` / ``mp``) — interchangeable
  backends driving the shard engines.  The mp executor's data plane is
  selectable: ``transport="pickle"`` (pipes) or ``transport="shm"``
  (zero-copy shared-memory rings, :mod:`repro.runtime.shmring`).

``repro.core.driver``'s ``OfflineDriver`` and ``ThreadedIPD`` are thin
façades over this package, kept for compatibility.
"""

from .checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointCorruptError,
    CheckpointStore,
    restore_engine,
)
from .executors import (
    EXECUTOR_KINDS,
    TRANSPORT_KINDS,
    MultiprocessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    WorkerCrashError,
    make_executor,
)
from .faulthook import FaultHookLike
from .live import LivePipeline, PipelineStateError
from ..core.snapshot import Snapshot
from .pipeline import Pipeline
from .result import RunResult
from .sharding import ShardedIPD
from .shards import ShardEngine
from .shmring import ShmFrameError, ShmRing, ShmRingError
from .sinks import CallbackSink, CSVSink, MemorySink, ServiceSink, Sink

__all__ = [
    "Pipeline",
    "LivePipeline",
    "PipelineStateError",
    "FaultHookLike",
    "ShardedIPD",
    "ShardEngine",
    "RunResult",
    "Checkpoint",
    "CheckpointCorruptError",
    "CheckpointStore",
    "CHECKPOINT_VERSION",
    "restore_engine",
    "Sink",
    "Snapshot",
    "MemorySink",
    "CallbackSink",
    "CSVSink",
    "ServiceSink",
    "SerialExecutor",
    "ThreadedExecutor",
    "MultiprocessExecutor",
    "WorkerCrashError",
    "make_executor",
    "EXECUTOR_KINDS",
    "TRANSPORT_KINDS",
    "ShmRing",
    "ShmRingError",
    "ShmFrameError",
]
