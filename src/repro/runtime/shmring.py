"""SPSC ring buffer over POSIX shared memory — the mp data plane.

One :class:`ShmRing` connects the router process (single producer) to
one shard-worker process (single consumer).  The producer reserves a
frame directly inside the shared segment, the wire codec encodes into
that reservation, and the consumer decodes straight out of it — the
batch bytes are written once and read once, with no pickling and no
intermediate copies.

Segment layout::

    u64 write counter | u64 read counter | ... padding to 64 ... | data

Both counters are monotonic byte positions (``position % capacity`` is
the physical offset); ``write - read`` is the number of unconsumed
bytes, so full/empty are unambiguous without wasting a slot.  Each
frame is::

    u32 payload length | u32 seq | u8 kind | u32 crc32 | payload

``seq`` numbers committed data frames from 1; the executor sends it as
a watermark with every control-plane command so the worker can drain
the ring up to the exact frame the command must observe.  ``crc32``
(over the payload) turns any in-flight corruption into a typed
:class:`ShmFrameError` on the consumer instead of a silently divergent
decode.  A frame never wraps: when the tail of the segment is too short
the producer publishes a ``PAD`` frame (or, below header size, the
consumer skips the tail implicitly) and restarts at offset zero.

Backpressure is a bounded sleep-spin: :meth:`reserve` waits for the
consumer to free space, invoking an optional ``on_stall`` callback each
iteration (the executor uses it to detect a dead worker) and raising
:class:`ShmRingError` if the stall outlasts ``stall_timeout`` spins.

Lifecycle: the creating side owns the segment name and must call
:meth:`unlink` exactly once after both ends have :meth:`close`\\ d; the
attaching side (the worker) only ever closes.  Attachment is by name,
so the ring crosses both fork and spawn process starts.
"""

from __future__ import annotations

import struct
import time
import zlib
from multiprocessing import shared_memory
from typing import Callable, Optional

__all__ = [
    "ShmRing",
    "ShmRingError",
    "ShmFrameError",
    "FRAME_PAD",
    "FRAME_FEED",
    "FRAME_OPS",
]

#: frame kinds carried on the ring (PAD frames are consumed internally)
FRAME_PAD = 0
FRAME_FEED = 1
FRAME_OPS = 2

_CTRL = struct.Struct("<QQ")
_HEADER = struct.Struct("<IIBI")
_DATA_OFFSET = 64

#: sleep per stall iteration; bounded spinning keeps the unloaded-ring
#: latency low without burning a core while the peer is busy
_STALL_SLEEP_SECONDS = 0.0002

#: default stall budget: iterations of _STALL_SLEEP_SECONDS (~30 s)
_DEFAULT_STALL_TIMEOUT = 150_000


class ShmRingError(RuntimeError):
    """The ring protocol failed (stall timeout, oversized frame, misuse)."""


class ShmFrameError(ShmRingError):
    """A frame failed its CRC — the payload was corrupted in flight."""


class ShmRing:
    """Single-producer single-consumer byte ring in shared memory."""

    def __init__(
        self,
        capacity: int = 1 << 20,
        name: Optional[str] = None,
        stall_timeout: int = _DEFAULT_STALL_TIMEOUT,
    ) -> None:
        if name is None:
            if capacity <= _HEADER.size:
                raise ValueError(
                    f"ring capacity must exceed {_HEADER.size} bytes"
                )
            self._shm = shared_memory.SharedMemory(
                create=True, size=_DATA_OFFSET + capacity
            )
            self.capacity = capacity
            self.owner = True
            _CTRL.pack_into(self._shm.buf, 0, 0, 0)
        else:
            self._shm = shared_memory.SharedMemory(name=name)
            self.capacity = self._shm.size - _DATA_OFFSET
            self.owner = False
        self.stall_timeout = stall_timeout
        self._buf: Optional[memoryview] = self._shm.buf
        #: producer-side monotonic write position / committed frame seq
        self._write = 0
        self._seq = 0
        #: consumer-side monotonic read position and the un-consumed frame
        self._read = 0
        self._held: Optional[tuple[memoryview, int]] = None
        self._pending: Optional[tuple[int, int, int]] = None
        #: chaos knob: treat the ring as full for this many reserve checks
        self._force_full = 0
        self._closed = False
        self._unlinked = False

    @property
    def name(self) -> str:
        """Segment name the consumer side attaches with."""
        return self._shm.name

    @property
    def sequence(self) -> int:
        """Seq of the last committed data frame (the producer watermark)."""
        return self._seq

    # ------------------------------------------------------------------ producer

    def _read_counter(self) -> int:
        assert self._buf is not None
        return _CTRL.unpack_from(self._buf, 0)[1]

    def _publish_write(self) -> None:
        assert self._buf is not None
        struct.pack_into("<Q", self._buf, 0, self._write)

    def force_stall(self, checks: int) -> None:
        """Chaos seam: make the next *checks* reserve probes see a full
        ring, driving the real backpressure wait loop."""
        self._force_full = checks

    def reserve(
        self,
        kind: int,
        size: int,
        on_stall: Optional[Callable[[int], None]] = None,
    ) -> memoryview:
        """Block until *size* payload bytes fit; return the write view.

        The returned memoryview is the payload region of the next frame,
        inside shared memory — encode into it, then :meth:`commit`.
        Only one reservation may be outstanding.  ``on_stall(spins)`` is
        invoked once per backpressure iteration and may raise to abort.
        """
        if self._pending is not None:
            raise ShmRingError("previous reservation was never committed")
        buf = self._buf
        if buf is None:
            raise ShmRingError("ring is closed")
        needed = _HEADER.size + size
        if needed > self.capacity:
            raise ShmRingError(
                f"frame of {size} payload bytes exceeds ring capacity "
                f"{self.capacity}"
            )
        spins = 0
        while True:
            position = self._write % self.capacity
            contiguous = self.capacity - position
            free = self.capacity - (self._write - self._read_counter())
            if self._force_full:
                self._force_full -= 1
            elif contiguous < needed:
                # the frame must not wrap: pad out the tail (the pad is
                # published on its own so it never deadlocks against the
                # frame itself fitting) and retry from offset zero
                if free >= contiguous:
                    if contiguous >= _HEADER.size:
                        _HEADER.pack_into(
                            buf,
                            _DATA_OFFSET + position,
                            contiguous - _HEADER.size,
                            0,
                            FRAME_PAD,
                            0,
                        )
                    # below header size the consumer skips the tail itself
                    self._write += contiguous
                    self._publish_write()
                    continue
            elif free >= needed:
                break
            spins += 1
            if on_stall is not None:
                on_stall(spins)
            if spins > self.stall_timeout:
                raise ShmRingError(
                    f"ring full: consumer made no progress in "
                    f"{spins} backpressure checks"
                )
            time.sleep(_STALL_SLEEP_SECONDS)
        start = _DATA_OFFSET + position + _HEADER.size
        self._pending = (position, size, kind)
        return buf[start:start + size]

    def commit(self, view: memoryview, corrupt: bool = False) -> int:
        """Publish the reserved frame; returns its seq.

        *view* is the memoryview :meth:`reserve` returned; its CRC is
        taken here, after encoding.  ``corrupt=True`` (chaos tests only)
        flips one payload bit *after* the CRC is computed, guaranteeing
        the consumer sees a :class:`ShmFrameError`.
        """
        if self._pending is None:
            raise ShmRingError("commit without a reservation")
        position, size, kind = self._pending
        self._pending = None
        buf = self._buf
        assert buf is not None
        crc = zlib.crc32(view) & 0xFFFFFFFF
        if corrupt and size:
            view[size // 2] ^= 0x40
        view.release()
        self._seq += 1
        _HEADER.pack_into(
            buf, _DATA_OFFSET + position, size, self._seq, kind, crc
        )
        self._write += _HEADER.size + size
        self._publish_write()
        return self._seq

    def abort(self, view: memoryview) -> None:
        """Drop an uncommitted reservation (the frame is never published)."""
        if self._pending is not None:
            self._pending = None
            view.release()

    def send(self, kind: int, payload: "bytes | bytearray") -> int:
        """Copying convenience path (tests): reserve + write + commit."""
        view = self.reserve(kind, len(payload))
        view[:] = payload
        return self.commit(view)

    # ------------------------------------------------------------------ consumer

    def _write_counter(self) -> int:
        assert self._buf is not None
        return _CTRL.unpack_from(self._buf, 0)[0]

    def _publish_read(self) -> None:
        assert self._buf is not None
        struct.pack_into("<Q", self._buf, 8, self._read)

    def _release_held(self) -> None:
        if self._held is None:
            return
        view, advance = self._held
        self._held = None
        view.release()
        self._read += advance
        self._publish_read()

    def try_recv(self) -> Optional[tuple[int, int, memoryview]]:
        """Pop the next data frame: ``(seq, kind, payload)`` or ``None``.

        The payload view aliases ring memory and stays valid until the
        *next* ``try_recv``/``recv``/``close`` call, which also frees
        the frame's space for the producer.  The CRC is verified here.
        """
        self._release_held()
        buf = self._buf
        if buf is None:
            raise ShmRingError("ring is closed")
        write = self._write_counter()
        while True:
            if self._read == write:
                return None
            position = self._read % self.capacity
            contiguous = self.capacity - position
            if contiguous < _HEADER.size:
                self._read += contiguous
                self._publish_read()
                continue
            size, seq, kind, crc = _HEADER.unpack_from(
                buf, _DATA_OFFSET + position
            )
            if kind == FRAME_PAD:
                self._read += _HEADER.size + size
                self._publish_read()
                continue
            start = _DATA_OFFSET + position + _HEADER.size
            payload = buf[start:start + size]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                payload.release()
                raise ShmFrameError(
                    f"frame {seq} (kind {kind}, {size} bytes) failed its "
                    f"CRC check"
                )
            self._held = (payload, _HEADER.size + size)
            return seq, kind, payload

    def recv(
        self, on_stall: Optional[Callable[[int], None]] = None
    ) -> tuple[int, int, memoryview]:
        """Blocking :meth:`try_recv` with the same stall budget."""
        spins = 0
        while True:
            frame = self.try_recv()
            if frame is not None:
                return frame
            spins += 1
            if on_stall is not None:
                on_stall(spins)
            if spins > self.stall_timeout:
                raise ShmRingError(
                    f"ring empty: producer made no progress in "
                    f"{spins} checks"
                )
            time.sleep(_STALL_SLEEP_SECONDS)

    # ------------------------------------------------------------------ lifecycle

    def close(self) -> None:
        """Release views and detach from the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._release_held()
        self._pending = None
        self._buf = None
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner side, once, after close)."""
        if not self.owner or self._unlinked:
            return
        self._unlinked = True
        self._shm.unlink()

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
        self.unlink()
