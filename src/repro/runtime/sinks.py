"""Pipeline output sinks.

A sink receives every :class:`~repro.core.snapshot.Snapshot` a
:class:`~repro.runtime.pipeline.Pipeline` emits — records plus the
lazily compiled LPM and epoch/watermark metadata — and does something
with it: keep it in memory, hand it to a callback, append it to a
Table-3 CSV file, or feed an archive/serving plane.  Sinks are
deliberately tiny; anything stateful or format-specific belongs behind
the :class:`CallbackSink`.

Lifecycle: ``emit`` per snapshot, then ``close`` exactly once.
:meth:`Sink.close` is explicitly idempotent — a second call is a no-op,
not a rewrite — and subclasses hook teardown via :meth:`Sink._close`,
which the base class guarantees runs at most once even when both a
recovery path and normal teardown reach it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from ..core.output import IPDRecord, write_records_csv
from ..core.snapshot import Snapshot

if TYPE_CHECKING:
    from ..serving.service import IngressLookupService, ServingEpoch

__all__ = ["Sink", "MemorySink", "CallbackSink", "CSVSink", "ServiceSink"]


class Sink:
    """Interface: ``emit`` per snapshot, ``close`` once at end of run."""

    def __init__(self) -> None:
        self._closed = False

    def emit(self, snapshot: Snapshot) -> None:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run."""
        return self._closed

    def close(self) -> None:
        """Flush and release resources.  Idempotent: only the first call
        runs :meth:`_close`; later calls return immediately."""
        if self._closed:
            return
        self._closed = True
        self._close()

    def _close(self) -> None:
        """Subclass teardown hook; guaranteed to run at most once."""


class MemorySink(Sink):
    """Keep every snapshot in memory (time -> records)."""

    def __init__(self) -> None:
        super().__init__()
        self.snapshots: dict[float, list[IPDRecord]] = {}
        #: the last Snapshot object received (compiled-LPM cache included)
        self.latest: Optional[Snapshot] = None

    def emit(self, snapshot: Snapshot) -> None:
        self.snapshots[snapshot.when] = snapshot.records
        self.latest = snapshot

    def final_snapshot(self) -> list[IPDRecord]:
        if not self.snapshots:
            return []
        return self.snapshots[max(self.snapshots)]


class CallbackSink(Sink):
    """Forward each snapshot to a user callback.

    The callback keeps its historical ``(when, records)`` signature;
    callers that want the full :class:`Snapshot` (compiled LPM, epoch)
    pass ``with_snapshot=True`` to receive the object itself instead.
    """

    def __init__(
        self,
        callback: "Callable[..., None]",
        with_snapshot: bool = False,
    ) -> None:
        super().__init__()
        self.callback = callback
        self.with_snapshot = with_snapshot

    def emit(self, snapshot: Snapshot) -> None:
        if self.with_snapshot:
            self.callback(snapshot)
        else:
            self.callback(snapshot.when, snapshot.records)


class CSVSink(Sink):
    """Write snapshots to a Table-3 CSV file.

    With ``final_only=True`` (the default) only the last snapshot is
    written — the common "give me the final mapping" case; otherwise
    every snapshot's rows land in the file in emission order under one
    header (each row carries its timestamp, so the concatenation stays
    unambiguous).  The file is written once, on the first
    :meth:`~Sink.close`.
    """

    def __init__(self, path: str, final_only: bool = True) -> None:
        super().__init__()
        self.path = path
        self.final_only = final_only
        self.rows_written = 0
        self._pending: list[IPDRecord] = []

    def emit(self, snapshot: Snapshot) -> None:
        if self.final_only:
            self._pending = list(snapshot.records)
        else:
            self._pending.extend(snapshot.records)

    def _close(self) -> None:
        with open(self.path, "w", newline="") as stream:
            self.rows_written = write_records_csv(self._pending, stream)
        self._pending = []


class ServiceSink(Sink):
    """Install each emitted snapshot into a live lookup service.

    Bridges the replay plane to the serving plane in-process: every
    :class:`~repro.core.snapshot.Snapshot` the pipeline emits is
    compiled into a :class:`~repro.serving.service.ServingEpoch` and
    hot-swapped into the attached
    :class:`~repro.serving.service.IngressLookupService`, so queries
    against the service always answer from the newest completed sweep
    while the pipeline keeps replaying.  Compilation happens inside
    ``emit`` (the pipeline's thread), never on the query path.

    Pass an existing service to feed one that also serves history from
    an archive or checkpoint store; with no argument the sink creates a
    fresh standalone service, reachable as :attr:`service`.
    """

    def __init__(self, service: "Optional[IngressLookupService]" = None) -> None:
        super().__init__()
        if service is None:
            from ..serving.service import IngressLookupService

            service = IngressLookupService()
        self.service = service
        #: epochs installed by this sink (not counting other writers)
        self.installed = 0
        self.latest: "Optional[ServingEpoch]" = None

    def emit(self, snapshot: Snapshot) -> None:
        self.latest = self.service.install_snapshot(snapshot)
        self.installed += 1
