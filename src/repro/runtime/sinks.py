"""Pipeline output sinks.

A sink receives every snapshot a :class:`~repro.runtime.pipeline.Pipeline`
emits — ``(snapshot time, Table-3 records)`` pairs — and does something
with it: keep it in memory, hand it to a callback, or append it to a
Table-3 CSV file.  Sinks are deliberately tiny; anything stateful or
format-specific belongs behind the :class:`CallbackSink`.
"""

from __future__ import annotations

from typing import Callable

from ..core.output import IPDRecord, write_records_csv

__all__ = ["Sink", "MemorySink", "CallbackSink", "CSVSink"]


class Sink:
    """Interface: ``emit`` per snapshot, ``close`` once at end of run."""

    def emit(self, when: float, records: list[IPDRecord]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class MemorySink(Sink):
    """Keep every snapshot in memory (time -> records)."""

    def __init__(self) -> None:
        self.snapshots: dict[float, list[IPDRecord]] = {}

    def emit(self, when: float, records: list[IPDRecord]) -> None:
        self.snapshots[when] = records

    def final_snapshot(self) -> list[IPDRecord]:
        if not self.snapshots:
            return []
        return self.snapshots[max(self.snapshots)]


class CallbackSink(Sink):
    """Forward each snapshot to a user callback."""

    def __init__(self, callback: Callable[[float, list[IPDRecord]], None]) -> None:
        self.callback = callback

    def emit(self, when: float, records: list[IPDRecord]) -> None:
        self.callback(when, records)


class CSVSink(Sink):
    """Write snapshots to a Table-3 CSV file.

    With ``final_only=True`` (the default) only the last snapshot is
    written — the common "give me the final mapping" case; otherwise
    every snapshot's rows land in the file in emission order under one
    header (each row carries its timestamp, so the concatenation stays
    unambiguous).  The file is written on :meth:`close`.
    """

    def __init__(self, path: str, final_only: bool = True) -> None:
        self.path = path
        self.final_only = final_only
        self.rows_written = 0
        self._pending: list[IPDRecord] = []

    def emit(self, when: float, records: list[IPDRecord]) -> None:
        if self.final_only:
            self._pending = list(records)
        else:
            self._pending.extend(records)

    def close(self) -> None:
        with open(self.path, "w", newline="") as stream:
            self.rows_written = write_records_csv(self._pending, stream)
        self._pending = []
