"""The fault-injection seam's structural type.

Every ``fault_hook`` parameter in the runtime (pipeline, executors,
checkpoint store) accepts any object with this shape — in practice the
testkit's :class:`~repro.testkit.faults.FaultPlan` — and defaults to
``None`` (a no-op; lint rule IPD006 enforces the default).  The protocol
lives here, dependency-free, so annotating the seam never couples the
runtime to the testkit.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

from ..netflow.records import FlowBatch

__all__ = ["FaultHookLike"]


@runtime_checkable
class FaultHookLike(Protocol):
    """What the runtime calls on an attached fault hook."""

    def on_feed(self, index: int, batch: FlowBatch) -> Optional[str]:
        """Executor feed site: return a fault action name or ``None``."""

    def on_shm_feed(self, slot: int) -> Optional[str]:
        """Shm-transport feed site: ``"stall"``, ``"corrupt"`` or ``None``."""

    def before_tick(self, executor: object, now: float) -> None:
        """Sweep-tick site (``executor`` is ``None`` for a plain engine)."""

    def before_sweep(self, engine: object, now: float) -> None:
        """Engine-level sweep site: may saturate the admission sketch."""

    def on_sink_emit(self, when: float) -> None:
        """Sink-write site: may raise to simulate a failing sink."""

    def on_checkpoint_save(self, when: float, data: bytes) -> bytes:
        """Checkpoint-save site: may corrupt or replace the image bytes."""
