"""The hot-swap ingress lookup service (the serving plane's core).

An :class:`IngressLookupService` answers "which ingress serves this
address?" from an installed :class:`ServingEpoch` — an immutable bundle
of one snapshot's :class:`~repro.core.lpm.CompiledLPM` per address
family plus its epoch/watermark identity.  Epochs are swapped by a
single attribute assignment (atomic under the GIL), so queries never
pause for an install and never observe a torn state: every query reads
the epoch pointer exactly once and answers entirely from that epoch,
old or new.

The service also carries the deployment's two operational loops:

* **history** — :meth:`lookup_at` answers point-in-time queries from a
  :class:`~repro.archive.SnapshotArchive` partition (stored compiled
  blob when present) or, failing that, from the newest valid
  checkpoint image.
* **load skew** — :class:`ShardLoadCounters` buckets query load by the
  address-space shard that owns each target; when a
  :class:`ReshardPolicy` sees sustained skew it recommends widening the
  shard grid (4 → 16 by default), and :meth:`IngressLookupService.reshard`
  rebuilds an engine from the latest checkpoint at the new width —
  checkpoints are topology-free, so any width is legal.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, NamedTuple, Optional

from ..core.iputil import IPV4, IPV6, Prefix
from ..core.lpm import CompiledLPM
from ..core.snapshot import Snapshot
from ..devtools.markers import hot_path

if TYPE_CHECKING:
    from ..archive import SnapshotArchive
    from ..core.algorithm import IPD
    from ..runtime.checkpoint import CheckpointStore
    from ..runtime.sharding import ShardedIPD
    from ..topology.elements import IngressPoint

__all__ = [
    "IngressLookupService",
    "LookupResult",
    "NoEpochError",
    "ReshardPolicy",
    "ServingEpoch",
    "ServingError",
    "ShardLoadCounters",
]


class ServingError(RuntimeError):
    """Base of the serving plane's failure taxonomy."""


class NoEpochError(ServingError):
    """A query arrived before any epoch was installed."""


class LookupResult(NamedTuple):
    """One query answer: the §5.1 prediction plus serving metadata."""

    ingress: "IngressPoint"
    #: the snapshot's dominance share for the answering range
    confidence: float
    #: the most specific classified range covering the queried address
    prefix: Prefix
    #: seconds between the answering epoch's watermark and the snapshot
    #: the row was compiled from (0.0 for a freshly compiled snapshot)
    age: float
    #: the answering epoch's id (-1 for historical answers)
    epoch: int
    #: the answering snapshot's trace time
    watermark: float


class ServingEpoch:
    """One immutable generation of the lookup service.

    Holds the compiled table per address family plus the identity a
    reader needs to label its answers.  Instances never mutate after
    construction — that invariant is what makes installing one a plain
    reference assignment.
    """

    __slots__ = ("epoch", "watermark", "source", "_tables")

    def __init__(
        self,
        epoch: int,
        watermark: float,
        tables: Mapping[int, CompiledLPM],
        source: Optional[str] = None,
    ) -> None:
        self.epoch = epoch
        self.watermark = watermark
        self.source = source
        self._tables: dict[int, CompiledLPM] = dict(tables)

    @classmethod
    def from_snapshot(cls, snapshot: Snapshot) -> "ServingEpoch":
        """Compile every family present in *snapshot* into one epoch.

        Compilation happens here — before the caller swaps the epoch
        in — so an install never publishes a partially built table.
        """
        tables = {
            version: snapshot.compiled(version)
            for version in snapshot.families()
        }
        return cls(
            epoch=snapshot.epoch,
            watermark=snapshot.when,
            tables=tables,
            source=snapshot.source,
        )

    def table(self, version: int = IPV4) -> Optional[CompiledLPM]:
        return self._tables.get(version)

    def families(self) -> tuple[int, ...]:
        return tuple(sorted(self._tables))

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables.values())

    def __repr__(self) -> str:
        return (
            f"ServingEpoch(epoch={self.epoch}, watermark={self.watermark}, "
            f"families={self.families()}, rows={len(self)})"
        )


class ShardLoadCounters:
    """Per-shard query-load counters over the address-space grid.

    Shard assignment mirrors the runtime's address-space sharding: the
    top ``log2(shards)`` bits of the address select the shard, so the
    counters directly answer "which engine shard would this query's
    traffic have hit?".  Counters are a flat ``array('Q')`` — bumping
    one is an index increment on the query path, nothing more.
    """

    __slots__ = ("counts", "_shift4", "_shift6")

    def __init__(self, shards: int) -> None:
        if shards < 1 or shards & (shards - 1):
            raise ValueError(f"shards must be a power of two, got {shards}")
        bits = shards.bit_length() - 1
        self.counts = array("Q", bytes(8 * shards))
        self._shift4 = 32 - bits
        self._shift6 = 128 - bits

    @property
    def shards(self) -> int:
        return len(self.counts)

    def shard_of(self, ip_value: int, version: int = IPV4) -> int:
        shift = self._shift4 if version == IPV4 else self._shift6
        return ip_value >> shift

    def record(self, ip_value: int, version: int = IPV4) -> None:
        shift = self._shift4 if version == IPV4 else self._shift6
        self.counts[ip_value >> shift] += 1

    def total(self) -> int:
        total = 0
        for count in self.counts:
            total += count
        return total

    def skew(self) -> float:
        """Peak-to-mean load ratio (1.0 = perfectly balanced)."""
        total = self.total()
        if total == 0:
            return 1.0
        return max(self.counts) * self.shards / total

    def reset(self) -> None:
        for index in range(len(self.counts)):
            self.counts[index] = 0


@dataclass(frozen=True)
class ReshardPolicy:
    """When sustained query skew justifies widening the shard grid.

    ``recommend`` returns the new shard count, or ``None`` while the
    observed load stays acceptable: fewer than ``min_queries`` samples
    (skew over a handful of queries is noise), peak-to-mean skew under
    ``skew_threshold``, or the grid already at ``max_shards``.
    """

    skew_threshold: float = 2.0
    min_queries: int = 1000
    growth_factor: int = 4
    max_shards: int = 16

    def recommend(self, load: ShardLoadCounters) -> Optional[int]:
        if load.shards >= self.max_shards:
            return None
        if load.total() < self.min_queries:
            return None
        if load.skew() < self.skew_threshold:
            return None
        return min(load.shards * self.growth_factor, self.max_shards)


class IngressLookupService:
    """Epoch-hot-swapping ip → ingress lookups over compiled snapshots.

    Readers and the installer share no lock: :meth:`install` publishes
    a fully built :class:`ServingEpoch` with one attribute assignment,
    and every query method loads ``self._current`` exactly once, then
    answers entirely from that epoch.  A swap therefore never pauses
    queries and a query never mixes two epochs (pinned by
    ``tests/serving/test_service.py``).
    """

    def __init__(
        self,
        archive: "Optional[SnapshotArchive]" = None,
        checkpoints: "Optional[CheckpointStore]" = None,
        shards: int = 4,
        policy: Optional[ReshardPolicy] = None,
    ) -> None:
        self.archive = archive
        self.checkpoints = checkpoints
        self.policy = policy if policy is not None else ReshardPolicy()
        self.load = ShardLoadCounters(shards)
        self.installs = 0
        self.queries = 0
        self._current: Optional[ServingEpoch] = None
        #: point-in-time answers resolved once, shared across queries
        self._history: dict[tuple[float, int], CompiledLPM] = {}

    # ------------------------------------------------------------- install

    @property
    def current(self) -> Optional[ServingEpoch]:
        return self._current

    def install(self, epoch: ServingEpoch) -> ServingEpoch:
        """Publish *epoch* as the serving generation (zero-pause swap)."""
        self._current = epoch  # the swap: one atomic reference store
        self.installs += 1
        return epoch

    def install_snapshot(self, snapshot: Snapshot) -> ServingEpoch:
        """Compile *snapshot* (all families), then swap it in."""
        return self.install(ServingEpoch.from_snapshot(snapshot))

    # ------------------------------------------------------------- queries

    @hot_path
    def lookup(
        self, ip_value: int, version: int = IPV4
    ) -> Optional[LookupResult]:
        """The current epoch's answer for *ip_value*, or ``None``.

        Reads the epoch pointer once; a concurrent :meth:`install`
        affects only queries that start after the swap.
        """
        current = self._current
        if current is None:
            raise NoEpochError("no serving epoch installed yet")
        self.queries += 1
        self.load.record(ip_value, version)
        table = current._tables.get(version)
        if table is None:
            return None
        row = table.lookup_row(ip_value)
        if row < 0:
            return None
        entry = table.entry(row)
        return LookupResult(
            ingress=entry.ingress,
            confidence=entry.confidence,
            prefix=entry.prefix,
            age=current.watermark - entry.timestamp,
            epoch=current.epoch,
            watermark=current.watermark,
        )

    def lookup_many(
        self, ip_values: Iterable[int], version: int = IPV4
    ) -> tuple[int, list[Optional[LookupResult]]]:
        """Bulk lookup pinned to one epoch.

        Returns ``(epoch id, results)``; every result comes from the
        same epoch even if an install lands mid-iteration.
        """
        current = self._current
        if current is None:
            raise NoEpochError("no serving epoch installed yet")
        table = current._tables.get(version)
        watermark = current.watermark
        epoch = current.epoch
        record = self.load.record
        results: list[Optional[LookupResult]] = []
        append = results.append
        count = 0
        for value in ip_values:
            count += 1
            record(value, version)
            row = table.lookup_row(value) if table is not None else -1
            if row < 0:
                append(None)
                continue
            entry = table.entry(row)  # type: ignore[union-attr]
            append(
                LookupResult(
                    ingress=entry.ingress,
                    confidence=entry.confidence,
                    prefix=entry.prefix,
                    age=watermark - entry.timestamp,
                    epoch=epoch,
                    watermark=watermark,
                )
            )
        self.queries += count
        return epoch, results

    def lookup_at(
        self, timestamp: float, ip_value: int, version: int = IPV4
    ) -> Optional[LookupResult]:
        """Point-in-time answer: the table as of *timestamp*.

        Resolution order: the archive's newest snapshot at or before
        *timestamp* (stored compiled blob when one was archived), else
        the newest valid checkpoint image.  Resolved tables are cached,
        so repeated historical queries pay the load once.  Returns
        ``None`` when no history covers *timestamp*; raises
        :class:`ServingError` when no history source is configured.
        """
        resolved = self._historical_table(timestamp, version)
        if resolved is None:
            return None
        found, table = resolved
        row = table.lookup_row(ip_value)
        if row < 0:
            return None
        entry = table.entry(row)
        return LookupResult(
            ingress=entry.ingress,
            confidence=entry.confidence,
            prefix=entry.prefix,
            age=found - entry.timestamp,
            epoch=-1,
            watermark=found,
        )

    def _historical_table(
        self, timestamp: float, version: int
    ) -> Optional[tuple[float, CompiledLPM]]:
        if self.archive is None and self.checkpoints is None:
            raise ServingError(
                "historical lookup needs an archive or a checkpoint store"
            )
        if self.archive is not None:
            # resolve the covering snapshot time first (cheap bisect) so
            # cached tables short-circuit the partition/blob load
            times = self.archive.snapshot_times()
            position = bisect_right(times, timestamp)
            if position > 0:
                found = times[position - 1]
                key = (found, version)
                table = self._history.get(key)
                if table is None:
                    hit = self.archive.compiled_at(found, version)
                    assert hit is not None  # `found` is an archived time
                    table = hit[1]
                    self._history[key] = table
                return found, table
        return self._checkpoint_table(timestamp, version)

    def _checkpoint_table(
        self, timestamp: float, version: int
    ) -> Optional[tuple[float, CompiledLPM]]:
        if self.checkpoints is None:
            return None
        checkpoint = self.checkpoints.latest_valid()
        if checkpoint is None or checkpoint.when > timestamp:
            return None
        key = (checkpoint.when, version)
        table = self._history.get(key)
        if table is None:
            engine = self.checkpoints.restore_engine(checkpoint)
            records = engine.snapshot(checkpoint.when)
            table = CompiledLPM.from_records(records, version=version)
            self._history[key] = table
        return checkpoint.when, table

    # ------------------------------------------------------------- reshard

    def maybe_reshard(self) -> "Optional[IPD | ShardedIPD]":
        """Widen the engine shard grid when query skew demands it.

        Consults :attr:`policy` over the live load counters; when a
        wider grid is recommended and a checkpoint store is attached,
        rebuilds an engine from the newest valid checkpoint at the new
        width, resets the counters to the new grid, and returns the
        engine (``None`` when nothing to do).
        """
        recommended = self.policy.recommend(self.load)
        if recommended is None or self.checkpoints is None:
            return None
        return self.reshard(recommended)

    def reshard(self, shards: int) -> "Optional[IPD | ShardedIPD]":
        """Rebuild the engine from the newest checkpoint at *shards*."""
        if self.checkpoints is None:
            raise ServingError("reshard needs a checkpoint store")
        checkpoint = self.checkpoints.latest_valid()
        if checkpoint is None:
            return None
        engine = self.checkpoints.restore_engine(
            checkpoint, shards=shards, executor="serial"
        )
        self.load = ShardLoadCounters(shards)
        return engine

    # ------------------------------------------------------------- stats

    def stats(self) -> dict[str, object]:
        current = self._current
        return {
            "epoch": current.epoch if current is not None else None,
            "watermark": current.watermark if current is not None else None,
            "families": list(current.families()) if current is not None else [],
            "rows": len(current) if current is not None else 0,
            "installs": self.installs,
            "queries": self.queries,
            "shards": self.load.shards,
            "shard_loads": list(self.load.counts),
            "skew": self.load.skew(),
        }
