"""The asyncio line-protocol front end of the lookup service.

A :class:`LookupServer` exposes an :class:`IngressLookupService` over a
newline-delimited text protocol (one request per line, telnet-able):

=============================  =============================================
request                        response
=============================  =============================================
``GET <ip>``                   ``HIT <router> <if> <prefix> <conf> <age>
                               <epoch>`` or ``MISS <epoch>``
``MGET <ip> [<ip> ...]``       one ``HIT``/``MISS`` line per address, then
                               ``END <epoch>`` — all answered from the
                               *same* epoch, even across a concurrent swap
``AT <timestamp> <ip>``        point-in-time ``HIT``/``MISS`` (epoch -1)
``STATS``                      one JSON line (epoch, watermark, installs,
                               queries, per-shard loads, skew)
``QUIT``                       closes the connection
=============================  =============================================

Malformed input answers ``ERR <reason>`` and keeps the connection open.
The server holds no per-request state beyond the line being processed;
epoch installs on the service are visible to the next request
immediately, with in-flight bulk requests pinned to the epoch they
started on.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from ..core.iputil import parse_ip
from .service import (
    IngressLookupService,
    LookupResult,
    NoEpochError,
    ServingError,
)

__all__ = ["LookupServer"]


def _format_hit(result: Optional[LookupResult], epoch: int) -> str:
    if result is None:
        return f"MISS {epoch}"
    ingress = result.ingress
    return (
        f"HIT {ingress.router} {ingress.interface} {result.prefix} "
        f"{result.confidence:.6g} {result.age:.6g} {result.epoch}"
    )


class LookupServer:
    """Serve an :class:`IngressLookupService` on a TCP socket."""

    def __init__(
        self,
        service: IngressLookupService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ---------------------------------------------------------- lifecycle

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        ``port=0`` binds an ephemeral port — the return value carries
        the actual one.
        """
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            address = sockets[0].getsockname()
            self.host, self.port = address[0], address[1]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        """Start (if needed) and block until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # ---------------------------------------------------------- protocol

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                request = line.decode("utf-8", errors="replace").strip()
                if not request:
                    continue
                if request.upper() == "QUIT":
                    break
                for response in self._respond(request):
                    writer.write(response.encode("utf-8") + b"\n")
                await writer.drain()
        except asyncio.CancelledError:
            # event-loop teardown cancels in-flight handlers; drop the
            # connection quietly instead of logging a cancelled task
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass  # peer vanished mid-close; nothing left to release

    def _respond(self, request: str) -> list[str]:
        """All response lines for one request line."""
        parts = request.split()
        command = parts[0].upper()
        try:
            if command == "GET" and len(parts) == 2:
                return [self._get(parts[1])]
            if command == "MGET" and len(parts) >= 2:
                return self._mget(parts[1:])
            if command == "AT" and len(parts) == 3:
                return [self._at(parts[1], parts[2])]
            if command == "STATS" and len(parts) == 1:
                return [json.dumps(self.service.stats(), sort_keys=True)]
            return [f"ERR unknown or malformed command: {command}"]
        except NoEpochError:
            return ["ERR no epoch installed"]
        except ServingError as exc:
            return [f"ERR {exc}"]
        except ValueError as exc:
            return [f"ERR {exc}"]

    def _get(self, text: str) -> str:
        value, version = parse_ip(text)
        result = self.service.lookup(value, version)
        current = self.service.current
        epoch = current.epoch if current is not None else -1
        return _format_hit(result, epoch)

    def _mget(self, texts: list[str]) -> list[str]:
        # all addresses of one family resolve against one pinned epoch;
        # mixed-family batches keep per-family pinning via lookup_many
        parsed = [parse_ip(text) for text in texts]
        by_version: dict[int, list[int]] = {}
        for value, version in parsed:
            by_version.setdefault(version, []).append(value)
        answers: dict[tuple[int, int], Optional[LookupResult]] = {}
        epoch = -1
        for version, values in by_version.items():
            epoch, results = self.service.lookup_many(values, version)
            for value, result in zip(values, results):
                answers[(value, version)] = result
        lines = [
            _format_hit(answers[(value, version)], epoch)
            for value, version in parsed
        ]
        lines.append(f"END {epoch}")
        return lines

    def _at(self, timestamp_text: str, ip_text: str) -> str:
        timestamp = float(timestamp_text)
        value, version = parse_ip(ip_text)
        result = self.service.lookup_at(timestamp, value, version)
        return _format_hit(result, -1)
