"""The serving plane: hot-swap ingress lookups over compiled snapshots.

The pipeline produces :class:`~repro.core.snapshot.Snapshot` objects;
this package turns them into a queryable deployment surface:

* :class:`~repro.serving.service.IngressLookupService` — ip → (ingress,
  confidence, range, age) from an atomically hot-swapped
  :class:`~repro.serving.service.ServingEpoch`; point-in-time queries
  from the archive or checkpoints; per-shard load counters feeding a
  :class:`~repro.serving.service.ReshardPolicy` (checkpoint-reshard
  4 → 16 under skew).
* :class:`~repro.serving.server.LookupServer` — the asyncio
  line-protocol front end (``GET``/``MGET``/``AT``/``STATS``).

``cli serve`` wires both to an archive/CSV on disk; the ``query``
benchmark group measures lookups/s, tail latency and swap pause.
"""

from .server import LookupServer
from .service import (
    IngressLookupService,
    LookupResult,
    NoEpochError,
    ReshardPolicy,
    ServingEpoch,
    ServingError,
    ShardLoadCounters,
)

__all__ = [
    "IngressLookupService",
    "LookupResult",
    "LookupServer",
    "NoEpochError",
    "ReshardPolicy",
    "ServingEpoch",
    "ServingError",
    "ShardLoadCounters",
]
