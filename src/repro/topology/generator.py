"""Synthetic tier-1 ISP topology generation.

The paper's ISP operates ~3,000 border routers across an international
footprint.  We generate a structurally identical network at configurable
(much smaller) scale: several countries, a few PoPs per country, a few
border routers per PoP, and inter-AS links of all commercial classes.
Large neighbor ASes (the hypergiants of §2) get PNI links in several
countries — exactly the situation that makes ingress detection hard,
since their traffic may legitimately enter anywhere.

Generation is deterministic per seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .elements import LinkType
from .network import ISPTopology

__all__ = ["TopologySpec", "generate_topology"]


@dataclass(frozen=True)
class TopologySpec:
    """Knobs for the synthetic footprint."""

    asn: int = 65000
    n_countries: int = 4
    pops_per_country: int = 3
    routers_per_pop: int = 2
    #: neighbor ASNs that get a PNI in every country (hypergiants).
    hypergiant_asns: tuple[int, ...] = (15169, 16509, 32934, 2906, 20940)
    #: neighbor ASNs with a single public-peering link each.
    peer_asns: tuple[int, ...] = tuple(range(64500, 64520))
    #: upstream/transit neighbor ASNs (tier-1 peers of our tier-1).
    transit_asns: tuple[int, ...] = (174, 3356, 1299, 2914, 6762, 3257)
    #: probability that a hypergiant PNI is a LAG of 2-4 interfaces.
    lag_probability: float = 0.5
    seed: int = 7


def generate_topology(spec: TopologySpec | None = None) -> ISPTopology:
    """Build a deterministic synthetic tier-1 footprint from *spec*."""
    spec = spec or TopologySpec()
    rng = random.Random(spec.seed)
    topo = ISPTopology(asn=spec.asn)

    routers_by_country: dict[str, list[str]] = {}
    for country_index in range(spec.n_countries):
        country = f"C{country_index + 1}"
        topo.add_country(country)
        routers_by_country[country] = []
        for pop_index in range(spec.pops_per_country):
            pop = f"{country}-POP{pop_index + 1}"
            topo.add_pop(pop, country)
            for router_index in range(spec.routers_per_pop):
                router = (
                    f"{country}-R{pop_index * spec.routers_per_pop + router_index + 1}"
                )
                topo.add_router(router, pop)
                routers_by_country[country].append(router)

    link_counter = 0
    iface_counter: dict[str, int] = {}

    def next_link_id() -> str:
        nonlocal link_counter
        link_counter += 1
        return f"L{link_counter:04d}"

    def alloc_interfaces(router: str, media: str, count: int) -> list[str]:
        """Allocate *count* collision-free interface names on *router*."""
        start = iface_counter.get(router, 0)
        iface_counter[router] = start + count
        return [f"{media}{start + offset}" for offset in range(count)]

    # Hypergiants: one PNI per country, sometimes a LAG (feeds the bundle
    # logic and the maintenance-event experiments).
    for asn in spec.hypergiant_asns:
        for country, routers in routers_by_country.items():
            router = rng.choice(routers)
            if rng.random() < spec.lag_probability:
                n_ifaces = rng.randint(2, 4)
            else:
                n_ifaces = 1
            names = alloc_interfaces(router, "et", n_ifaces)
            topo.add_link(next_link_id(), asn, LinkType.PNI, router, names)

    # Public peers: a single-interface link on a random router.
    for asn in spec.peer_asns:
        country = rng.choice(list(routers_by_country))
        router = rng.choice(routers_by_country[country])
        names = alloc_interfaces(router, "xe", 1)
        topo.add_link(next_link_id(), asn, LinkType.PUBLIC_PEERING, router, names)

    # Transit / tier-1 interconnects: links in two distinct countries each.
    for asn in spec.transit_asns:
        countries = rng.sample(list(routers_by_country), k=min(2, spec.n_countries))
        for country in countries:
            router = rng.choice(routers_by_country[country])
            names = alloc_interfaces(router, "hu", 1)
            topo.add_link(next_link_id(), asn, LinkType.TRANSIT, router, names)

    topo.validate()
    return topo
