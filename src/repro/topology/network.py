"""The ISP topology container and lookup helpers.

:class:`ISPTopology` holds the country → PoP → router → interface
hierarchy plus the inter-AS links, and answers the queries the rest of
the system needs:

* IPD ingest: which :class:`~repro.topology.elements.IngressPoint` does a
  flow arriving on interface X of router Y map to?
* Miss taxonomy (§5.1.2): are two ingress points on the same router?  the
  same PoP?  the same country?
* Peering-violation detection (§5.6): is a given link a direct peering
  link (PNI / public peering) to a given neighbor AS?

A :mod:`networkx` graph view is exposed for users who want to run graph
algorithms over the footprint (and for the examples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import networkx as nx

from .elements import Country, IngressPoint, Interface, Link, LinkType, PoP, Router

__all__ = ["ISPTopology", "MissKind"]


class MissKind:
    """Miss classification labels (§5.1.2), least to most severe."""

    CORRECT = "correct"
    INTERFACE = "interface_miss"
    ROUTER = "router_miss"
    POP = "pop_miss"


@dataclass
class ISPTopology:
    """An ISP footprint: sites, routers, interfaces and inter-AS links."""

    asn: int
    countries: dict[str, Country] = field(default_factory=dict)
    pops: dict[str, PoP] = field(default_factory=dict)
    routers: dict[str, Router] = field(default_factory=dict)
    links: dict[str, Link] = field(default_factory=dict)
    _interfaces: dict[tuple[str, str], Interface] = field(default_factory=dict)

    # -- construction -----------------------------------------------------

    def add_country(self, name: str) -> Country:
        country = Country(name)
        self.countries[name] = country
        return country

    def add_pop(self, name: str, country: str) -> PoP:
        if country not in self.countries:
            raise KeyError(f"unknown country: {country!r}")
        pop = PoP(name, country)
        self.pops[name] = pop
        return pop

    def add_router(self, name: str, pop: str) -> Router:
        if pop not in self.pops:
            raise KeyError(f"unknown PoP: {pop!r}")
        router = Router(name, pop)
        self.routers[name] = router
        return router

    def add_link(
        self,
        link_id: str,
        neighbor_asn: int,
        link_type: LinkType,
        router: str,
        interface_names: Iterable[str],
    ) -> Link:
        """Attach a link to *router* via one or more interfaces."""
        if router not in self.routers:
            raise KeyError(f"unknown router: {router!r}")
        interfaces = tuple(
            Interface(name=name, router=router, link_id=link_id)
            for name in interface_names
        )
        if not interfaces:
            raise ValueError(f"link {link_id!r} needs at least one interface")
        link = Link(link_id, neighbor_asn, link_type, interfaces)
        self.links[link_id] = link
        for iface in interfaces:
            key = (router, iface.name)
            if key in self._interfaces:
                raise ValueError(f"duplicate interface {iface.name!r} on {router!r}")
            self._interfaces[key] = iface
        return link

    # -- lookups ----------------------------------------------------------

    def interface(self, router: str, name: str) -> Interface:
        return self._interfaces[(router, name)]

    def interfaces(self) -> Iterator[Interface]:
        return iter(self._interfaces.values())

    def ingress_points(self) -> list[IngressPoint]:
        """All single-interface ingress points of the network."""
        return [iface.ingress_point() for iface in self._interfaces.values()]

    def pop_of_router(self, router: str) -> str:
        return self.routers[router].pop

    def country_of_router(self, router: str) -> str:
        return self.pops[self.routers[router].pop].country

    def links_to_asn(self, neighbor_asn: int) -> list[Link]:
        return [
            link for link in self.links.values() if link.neighbor_asn == neighbor_asn
        ]

    def peering_links_to_asn(self, neighbor_asn: int) -> list[Link]:
        """Direct (PNI or public peering) links toward a neighbor AS."""
        return [
            link
            for link in self.links_to_asn(neighbor_asn)
            if link.link_type in (LinkType.PNI, LinkType.PUBLIC_PEERING)
        ]

    def link_of_ingress(self, ingress: IngressPoint) -> Link:
        """The inter-AS link behind an ingress point (first member for bundles)."""
        first_iface = ingress.interfaces()[0]
        iface = self._interfaces[(ingress.router, first_iface)]
        return self.links[iface.link_id]

    # -- miss taxonomy (§5.1.2) --------------------------------------------

    def classify_miss(self, predicted: IngressPoint, actual: IngressPoint) -> str:
        """Categorize a misprediction as interface / router / PoP miss.

        A bundle prediction counts as correct when the actual interface
        is one of its members (the bundle *is* the logical ingress).
        """
        if predicted == actual:
            return MissKind.CORRECT
        if predicted.router == actual.router:
            if set(actual.interfaces()) <= set(predicted.interfaces()):
                return MissKind.CORRECT
            return MissKind.INTERFACE
        if self.pop_of_router(predicted.router) == self.pop_of_router(actual.router):
            return MissKind.ROUTER
        return MissKind.POP

    # -- graph view ---------------------------------------------------------

    def to_graph(self) -> nx.Graph:
        """A networkx graph: ISP routers plus neighbor-AS nodes."""
        graph = nx.Graph()
        for router in self.routers.values():
            graph.add_node(
                router.name,
                kind="router",
                pop=router.pop,
                country=self.pops[router.pop].country,
            )
        for link in self.links.values():
            asn_node = f"AS{link.neighbor_asn}"
            graph.add_node(asn_node, kind="neighbor_as", asn=link.neighbor_asn)
            graph.add_edge(
                link.router,
                asn_node,
                link_id=link.link_id,
                link_type=link.link_type.value,
                interfaces=len(link.interfaces),
            )
        return graph

    def validate(self) -> None:
        """Check structural invariants; raises ``ValueError`` on breakage."""
        for pop in self.pops.values():
            if pop.country not in self.countries:
                raise ValueError(f"PoP {pop.name} references unknown country")
        for router in self.routers.values():
            if router.pop not in self.pops:
                raise ValueError(f"router {router.name} references unknown PoP")
        for link in self.links.values():
            for iface in link.interfaces:
                if iface.router not in self.routers:
                    raise ValueError(
                        f"link {link.link_id} interface on unknown router"
                    )
