"""Topology inventory import/export (JSON).

Real deployments feed IPD's miss taxonomy and link classification from
an inventory system (which router is in which PoP, which link belongs
to which neighbor AS).  This module round-trips an
:class:`~repro.topology.network.ISPTopology` through a plain JSON
document so users can load their own footprint instead of the synthetic
generator:

```json
{
  "asn": 65000,
  "countries": ["C1"],
  "pops": [{"name": "C1-POP1", "country": "C1"}],
  "routers": [{"name": "R1", "pop": "C1-POP1"}],
  "links": [{"id": "L1", "neighbor_asn": 15169, "type": "pni",
             "router": "R1", "interfaces": ["et0", "et1"]}]
}
```
"""

from __future__ import annotations

import json
import pathlib
from typing import IO, Union

from .elements import LinkType
from .network import ISPTopology

__all__ = ["topology_to_dict", "topology_from_dict", "save_topology",
           "load_topology"]


def topology_to_dict(topology: ISPTopology) -> dict:
    """Serialize a topology to a JSON-compatible dict."""
    return {
        "asn": topology.asn,
        "countries": sorted(topology.countries),
        "pops": [
            {"name": pop.name, "country": pop.country}
            for pop in sorted(topology.pops.values(), key=lambda p: p.name)
        ],
        "routers": [
            {"name": router.name, "pop": router.pop}
            for router in sorted(
                topology.routers.values(), key=lambda r: r.name
            )
        ],
        "links": [
            {
                "id": link.link_id,
                "neighbor_asn": link.neighbor_asn,
                "type": link.link_type.value,
                "router": link.router,
                "interfaces": [iface.name for iface in link.interfaces],
            }
            for link in sorted(
                topology.links.values(), key=lambda l: l.link_id
            )
        ],
    }


def topology_from_dict(data: dict) -> ISPTopology:
    """Build and validate a topology from the dict layout above."""
    if "asn" not in data:
        raise ValueError("missing topology field: 'asn'")

    def field(mapping: dict, key: str) -> object:
        if key not in mapping:
            raise ValueError(f"missing topology field: {key!r}")
        return mapping[key]

    topology = ISPTopology(asn=int(data["asn"]))
    for country in data.get("countries", []):
        topology.add_country(country)
    for pop in data.get("pops", []):
        topology.add_pop(field(pop, "name"), field(pop, "country"))
    for router in data.get("routers", []):
        topology.add_router(field(router, "name"), field(router, "pop"))
    for link in data.get("links", []):
        topology.add_link(
            field(link, "id"),
            int(field(link, "neighbor_asn")),
            LinkType(field(link, "type")),
            field(link, "router"),
            field(link, "interfaces"),
        )
    topology.validate()
    return topology


def save_topology(
    topology: ISPTopology, target: Union[str, pathlib.Path, IO[str]]
) -> None:
    """Write a topology to a JSON file or stream."""
    payload = json.dumps(topology_to_dict(topology), indent=2)
    if hasattr(target, "write"):
        target.write(payload)
    else:
        pathlib.Path(target).write_text(payload)


def load_topology(source: Union[str, pathlib.Path, IO[str]]) -> ISPTopology:
    """Read a topology from a JSON file or stream."""
    if hasattr(source, "read"):
        data = json.load(source)
    else:
        data = json.loads(pathlib.Path(source).read_text())
    return topology_from_dict(data)
