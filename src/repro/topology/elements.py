"""Topology building blocks of the simulated ISP.

The paper's deployment spans an international tier-1 network: countries
contain points of presence (PoPs), PoPs contain border routers, routers
expose interfaces, and each interface terminates a link to a neighboring
AS.  The miss taxonomy of §5.1.2 (interface / router / PoP miss) and the
link classes of §5.6 (PNI vs. transit, used to detect peering violations)
need exactly this hierarchy, so we model it explicitly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import NamedTuple

__all__ = [
    "LinkType",
    "IngressPoint",
    "Interface",
    "Router",
    "PoP",
    "Country",
    "Link",
]


class LinkType(enum.Enum):
    """Commercial classification of an interconnection link."""

    PNI = "pni"                # private network interconnect (direct peering)
    PUBLIC_PEERING = "public"  # settlement-free peering at an IXP
    TRANSIT = "transit"        # paid upstream transit
    CUSTOMER = "customer"      # paying downstream customer


class IngressPoint(NamedTuple):
    """The identity IPD assigns to a range: a router plus an interface.

    ``interface`` names a single physical interface, or — for bundles —
    a ``+``-joined, sorted list of interface names on the same router
    (see :mod:`repro.core.bundles`).
    """

    router: str
    interface: str

    @property
    def is_bundle(self) -> bool:
        """True when this logical ingress groups several interfaces."""
        return "+" in self.interface

    def interfaces(self) -> tuple[str, ...]:
        """Member interface names (one element for plain ingresses)."""
        return tuple(self.interface.split("+"))

    def __str__(self) -> str:
        return f"{self.router}.{self.interface}"


@dataclass(frozen=True)
class Interface:
    """A physical border interface, attached to one inter-AS link."""

    name: str
    router: str
    link_id: str

    def ingress_point(self) -> IngressPoint:
        return IngressPoint(self.router, self.name)


@dataclass(frozen=True)
class Router:
    """A border router located in a PoP."""

    name: str
    pop: str


@dataclass(frozen=True)
class PoP:
    """A point of presence — one physical site in one country."""

    name: str
    country: str


@dataclass(frozen=True)
class Country:
    """A country/region the ISP has presence in."""

    name: str


@dataclass(frozen=True)
class Link:
    """An interconnection link to a neighboring AS.

    A link terminates on one or more interfaces (LAGs span several
    physical interfaces on the same router).
    """

    link_id: str
    neighbor_asn: int
    link_type: LinkType
    interfaces: tuple[Interface, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        routers = {iface.router for iface in self.interfaces}
        if len(routers) > 1:
            raise ValueError(
                f"link {self.link_id} spans routers {sorted(routers)}; "
                "a link must terminate on a single router"
            )

    @property
    def router(self) -> str:
        if not self.interfaces:
            raise ValueError(f"link {self.link_id} has no interfaces")
        return self.interfaces[0].router
