"""ISP topology substrate: countries, PoPs, routers, interfaces, links."""

from .elements import Country, IngressPoint, Interface, Link, LinkType, PoP, Router
from .generator import TopologySpec, generate_topology
from .network import ISPTopology, MissKind
from .serialize import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)

__all__ = [
    "Country",
    "IngressPoint",
    "Interface",
    "ISPTopology",
    "Link",
    "LinkType",
    "MissKind",
    "PoP",
    "Router",
    "TopologySpec",
    "generate_topology",
    "load_topology",
    "save_topology",
    "topology_from_dict",
    "topology_to_dict",
]
