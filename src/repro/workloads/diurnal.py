"""Diurnal traffic modulation.

ISP ingress traffic follows a strong daily rhythm, peaking in the
evening "prime time" — the paper's accuracy figure overlays exactly this
curve (Fig. 6, gray shade) and its prime-time stability analysis pins
itself to the 8 PM busy hour (§5.3.1).  We model the rhythm as a raised
cosine with configurable peak hour and trough ratio.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["DiurnalModel", "hour_of_day"]

SECONDS_PER_DAY = 86_400.0


def hour_of_day(timestamp: float) -> float:
    """Fractional hour of day (0..24) of an epoch timestamp."""
    return (timestamp % SECONDS_PER_DAY) / 3600.0


@dataclass(frozen=True)
class DiurnalModel:
    """A raised-cosine daily load profile.

    ``factor`` is 1.0 at *peak_hour* and *trough_ratio* twelve hours
    away; it multiplies the base traffic rate.
    """

    peak_hour: float = 20.0
    trough_ratio: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.trough_ratio <= 1.0:
            raise ValueError("trough_ratio must be within [0, 1]")
        if not 0.0 <= self.peak_hour < 24.0:
            raise ValueError("peak_hour must be within [0, 24)")

    def factor(self, timestamp: float) -> float:
        """Relative load in (trough_ratio .. 1.0] at *timestamp*."""
        hour = hour_of_day(timestamp)
        phase = 2.0 * math.pi * (hour - self.peak_hour) / 24.0
        amplitude = (1.0 - self.trough_ratio) / 2.0
        midpoint = (1.0 + self.trough_ratio) / 2.0
        return midpoint + amplitude * math.cos(phase)

    def change_rate(self, timestamp: float) -> float:
        """|d factor / d hour| — a proxy for demand *shift* intensity.

        CDN mapping functions react to changing demand, so the CDN
        remap probability in the generator scales with this derivative:
        remaps cluster around the morning ramp-up and evening peak,
        reproducing the diurnal miss pattern of Fig. 8 (lower plot).
        """
        hour = hour_of_day(timestamp)
        phase = 2.0 * math.pi * (hour - self.peak_hour) / 24.0
        amplitude = (1.0 - self.trough_ratio) / 2.0
        return abs(-amplitude * math.sin(phase) * 2.0 * math.pi / 24.0)
