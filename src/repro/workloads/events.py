"""Operational events injected into the synthetic traffic.

The paper traces most IPD misclassifications back to concrete
operational causes (§5.1.2):

* **Maintenance** on a router moves traffic to other interfaces of the
  same router (AS1's interface misses) or to a different site entirely.
* **CDN mapping misalignment** makes traffic enter in another country —
  the PoP misses of AS3 and the §5.8 "slow in one city" debugging story.
* **Router-level load balancing** splits a prefix evenly over two
  routers — the one scenario IPD deliberately does not handle (§5.8).

Each event rewrites the ingress of matching flows during its active
window; the *rewritten* ingress is the ground truth (the traffic really
does enter there), which is exactly why IPD sees "misses" around event
boundaries until it reconverges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.iputil import Prefix
from ..topology.elements import IngressPoint
from ..topology.network import ISPTopology

__all__ = [
    "MaintenanceEvent",
    "RemapEvent",
    "LoadBalanceEvent",
    "EventSchedule",
]


@dataclass(frozen=True)
class MaintenanceEvent:
    """A router (or one interface) is serviced during [start, end).

    Affected traffic is diverted to *fallback* — typically another
    interface on the same router (interface miss) or another router in
    the same PoP (router miss).
    """

    router: str
    start: float
    end: float
    fallback: IngressPoint
    #: limit the event to one interface; ``None`` drains the whole router
    interface: Optional[str] = None

    def applies(self, timestamp: float, ingress: IngressPoint) -> bool:
        if not self.start <= timestamp < self.end:
            return False
        if ingress.router != self.router:
            return False
        if self.interface is not None and ingress.interface != self.interface:
            return False
        return True


@dataclass(frozen=True)
class RemapEvent:
    """A CDN maps the users of an address range to a different site.

    All traffic sourced from *prefix* enters via *new_ingress* during
    the window — entering in a "different, further away country" is the
    §5.8 FTTH-vs-ADSL debugging case.
    """

    prefix: Prefix
    start: float
    end: float
    new_ingress: IngressPoint

    def applies(self, timestamp: float, src_ip: int, version: int) -> bool:
        return (
            self.start <= timestamp < self.end
            and version == self.prefix.version
            and self.prefix.contains_ip(src_ip)
        )


@dataclass(frozen=True)
class LoadBalanceEvent:
    """Traffic of *prefix* is split ~50/50 across two routers.

    This reproduces the operational incident of §5.8: a directly
    connected hypergiant balanced over two routers, which IPD cannot
    classify (by design).
    """

    prefix: Prefix
    start: float
    end: float
    choices: tuple[IngressPoint, ...]

    def applies(self, timestamp: float, src_ip: int, version: int) -> bool:
        return (
            self.start <= timestamp < self.end
            and version == self.prefix.version
            and self.prefix.contains_ip(src_ip)
        )


@dataclass
class EventSchedule:
    """The ordered set of events active during a generator run."""

    maintenance: list[MaintenanceEvent] = field(default_factory=list)
    remaps: list[RemapEvent] = field(default_factory=list)
    load_balancing: list[LoadBalanceEvent] = field(default_factory=list)

    def add(self, event: object) -> None:
        if isinstance(event, MaintenanceEvent):
            self.maintenance.append(event)
        elif isinstance(event, RemapEvent):
            self.remaps.append(event)
        elif isinstance(event, LoadBalanceEvent):
            self.load_balancing.append(event)
        else:
            raise TypeError(f"unknown event type: {type(event).__name__}")

    def rewrite(
        self,
        timestamp: float,
        src_ip: int,
        version: int,
        ingress: IngressPoint,
        rng: random.Random,
    ) -> IngressPoint:
        """Apply all matching events to a flow's planned ingress.

        Load balancing wins over remaps wins over maintenance: a prefix
        being balanced is balanced regardless of where it would have
        entered, while maintenance only matters if the traffic would
        actually have used the serviced equipment.
        """
        for lb_event in self.load_balancing:
            if lb_event.applies(timestamp, src_ip, version):
                return rng.choice(lb_event.choices)
        for remap in self.remaps:
            if remap.applies(timestamp, src_ip, version):
                return remap.new_ingress
        for maintenance in self.maintenance:
            if maintenance.applies(timestamp, ingress):
                return maintenance.fallback
        return ingress

    def is_empty(self) -> bool:
        return not (self.maintenance or self.remaps or self.load_balancing)


def same_pop_fallback(
    topology: ISPTopology, router: str, exclude: Sequence[str] = ()
) -> Optional[IngressPoint]:
    """A fallback ingress on another router in the same PoP (router miss)."""
    pop = topology.pop_of_router(router)
    for other in topology.routers.values():
        if other.name == router or other.name in exclude:
            continue
        if other.pop != pop:
            continue
        for iface in topology.interfaces():
            if iface.router == other.name:
                return iface.ingress_point()
    return None
