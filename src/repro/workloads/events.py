"""Operational events injected into the synthetic traffic.

The paper traces most IPD misclassifications back to concrete
operational causes (§5.1.2):

* **Maintenance** on a router moves traffic to other interfaces of the
  same router (AS1's interface misses) or to a different site entirely.
* **CDN mapping misalignment** makes traffic enter in another country —
  the PoP misses of AS3 and the §5.8 "slow in one city" debugging story.
* **Router-level load balancing** splits a prefix evenly over two
  routers — the one scenario IPD deliberately does not handle (§5.8).

Each event rewrites the ingress of matching flows during its active
window; the *rewritten* ingress is the ground truth (the traffic really
does enter there), which is exactly why IPD sees "misses" around event
boundaries until it reconverges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.iputil import Prefix
from ..topology.elements import IngressPoint
from ..topology.network import ISPTopology

__all__ = [
    "MaintenanceEvent",
    "RemapEvent",
    "LoadBalanceEvent",
    "PolicingEvent",
    "PolicerState",
    "RouteFlapEvent",
    "EventSchedule",
]


@dataclass(frozen=True)
class MaintenanceEvent:
    """A router (or one interface) is serviced during [start, end).

    Affected traffic is diverted to *fallback* — typically another
    interface on the same router (interface miss) or another router in
    the same PoP (router miss).
    """

    router: str
    start: float
    end: float
    fallback: IngressPoint
    #: limit the event to one interface; ``None`` drains the whole router
    interface: Optional[str] = None

    def applies(self, timestamp: float, ingress: IngressPoint) -> bool:
        if not self.start <= timestamp < self.end:
            return False
        if ingress.router != self.router:
            return False
        if self.interface is not None and ingress.interface != self.interface:
            return False
        return True


@dataclass(frozen=True)
class RemapEvent:
    """A CDN maps the users of an address range to a different site.

    All traffic sourced from *prefix* enters via *new_ingress* during
    the window — entering in a "different, further away country" is the
    §5.8 FTTH-vs-ADSL debugging case.
    """

    prefix: Prefix
    start: float
    end: float
    new_ingress: IngressPoint

    def applies(self, timestamp: float, src_ip: int, version: int) -> bool:
        return (
            self.start <= timestamp < self.end
            and version == self.prefix.version
            and self.prefix.contains_ip(src_ip)
        )


@dataclass(frozen=True)
class LoadBalanceEvent:
    """Traffic of *prefix* is split ~50/50 across two routers.

    This reproduces the operational incident of §5.8: a directly
    connected hypergiant balanced over two routers, which IPD cannot
    classify (by design).
    """

    prefix: Prefix
    start: float
    end: float
    choices: tuple[IngressPoint, ...]

    def applies(self, timestamp: float, src_ip: int, version: int) -> bool:
        return (
            self.start <= timestamp < self.end
            and version == self.prefix.version
            and self.prefix.contains_ip(src_ip)
        )


@dataclass(frozen=True)
class PolicingEvent:
    """Traffic policing clips a prefix's volume to a token-bucket rate.

    During [start, end) flows sourced from *prefix* pass through a
    token bucket refilled at *rate_bytes_per_second* with capacity
    *burst_bytes*: bytes above the refill rate are clipped, a flow
    whose bucket is empty is dropped outright.  The event changes a
    range's volume *profile* (the elephant-flow shape the admission
    front-end keys on), not where its traffic enters — the paper's
    classification must survive it.

    The event itself is immutable; the bucket's mutable counters live
    in a per-generator-run :class:`PolicerState` so a scenario's shared
    schedule stays reusable across deterministic re-runs.
    """

    prefix: Prefix
    start: float
    end: float
    rate_bytes_per_second: float
    burst_bytes: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("policing window must end after it starts")
        if self.rate_bytes_per_second <= 0.0:
            raise ValueError("rate_bytes_per_second must be positive")
        if self.burst_bytes <= 0.0:
            raise ValueError("burst_bytes must be positive")

    def applies(self, timestamp: float, src_ip: int, version: int) -> bool:
        return (
            self.start <= timestamp < self.end
            and version == self.prefix.version
            and self.prefix.contains_ip(src_ip)
        )


class PolicerState:
    """Mutable token-bucket counters for one generator run.

    Flows must be offered in non-decreasing timestamp order (the
    generator sorts each bucket before applying policing).
    """

    __slots__ = ("event", "tokens", "last_refill")

    def __init__(self, event: PolicingEvent) -> None:
        self.event = event
        self.tokens = event.burst_bytes
        self.last_refill = event.start

    def grant(self, timestamp: float, want_bytes: int) -> int:
        """Grant up to *want_bytes* from the bucket at *timestamp*."""
        event = self.event
        if timestamp > self.last_refill:
            refill = (timestamp - self.last_refill) * event.rate_bytes_per_second
            self.tokens = min(event.burst_bytes, self.tokens + refill)
            self.last_refill = timestamp
        granted = min(want_bytes, int(self.tokens))
        if granted > 0:
            self.tokens -= granted
        return max(0, granted)


@dataclass(frozen=True)
class RouteFlapEvent:
    """A prefix oscillates between ingresses with a fixed period.

    Models route-flap / anycast-shift storms: during [start, end) the
    prefix's traffic enters via ``ingresses[k]`` where ``k`` advances
    every ``period_seconds / len(ingresses)`` — one full cycle per
    period.  Deterministic in trace time (no RNG), so flap ground truth
    is exactly reconstructible.  Periods bracketing the engine's ``t``
    probe the decay function's stability envelope.
    """

    prefix: Prefix
    start: float
    end: float
    period_seconds: float
    ingresses: tuple[IngressPoint, ...]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("flap window must end after it starts")
        if self.period_seconds <= 0.0:
            raise ValueError("period_seconds must be positive")
        if len(self.ingresses) < 2:
            raise ValueError("a flap needs at least two ingresses")

    def applies(self, timestamp: float, src_ip: int, version: int) -> bool:
        return (
            self.start <= timestamp < self.end
            and version == self.prefix.version
            and self.prefix.contains_ip(src_ip)
        )

    def ingress_at(self, timestamp: float) -> IngressPoint:
        dwell = self.period_seconds / len(self.ingresses)
        slot = int((timestamp - self.start) / dwell)
        return self.ingresses[slot % len(self.ingresses)]


@dataclass
class EventSchedule:
    """The ordered set of events active during a generator run."""

    maintenance: list[MaintenanceEvent] = field(default_factory=list)
    remaps: list[RemapEvent] = field(default_factory=list)
    load_balancing: list[LoadBalanceEvent] = field(default_factory=list)
    policing: list[PolicingEvent] = field(default_factory=list)
    flaps: list[RouteFlapEvent] = field(default_factory=list)

    def add(self, event: object) -> None:
        if isinstance(event, MaintenanceEvent):
            self.maintenance.append(event)
        elif isinstance(event, RemapEvent):
            self.remaps.append(event)
        elif isinstance(event, LoadBalanceEvent):
            self.load_balancing.append(event)
        elif isinstance(event, PolicingEvent):
            self.policing.append(event)
        elif isinstance(event, RouteFlapEvent):
            self.flaps.append(event)
        else:
            raise TypeError(f"unknown event type: {type(event).__name__}")

    def rewrite(
        self,
        timestamp: float,
        src_ip: int,
        version: int,
        ingress: IngressPoint,
        rng: random.Random,
    ) -> IngressPoint:
        """Apply all matching events to a flow's planned ingress.

        Load balancing wins over flaps wins over remaps wins over
        maintenance: a prefix being balanced is balanced regardless of
        where it would have entered, a flapping route overrides any
        mapping decision, while maintenance only matters if the traffic
        would actually have used the serviced equipment.
        """
        for lb_event in self.load_balancing:
            if lb_event.applies(timestamp, src_ip, version):
                return rng.choice(lb_event.choices)
        for flap in self.flaps:
            if flap.applies(timestamp, src_ip, version):
                return flap.ingress_at(timestamp)
        for remap in self.remaps:
            if remap.applies(timestamp, src_ip, version):
                return remap.new_ingress
        for maintenance in self.maintenance:
            if maintenance.applies(timestamp, ingress):
                return maintenance.fallback
        return ingress

    def make_policers(self) -> list[PolicerState]:
        """Fresh token-bucket state for one generator run."""
        return [PolicerState(event) for event in self.policing]

    def is_empty(self) -> bool:
        return not (
            self.maintenance
            or self.remaps
            or self.load_balancing
            or self.policing
            or self.flaps
        )


def same_pop_fallback(
    topology: ISPTopology, router: str, exclude: Sequence[str] = ()
) -> Optional[IngressPoint]:
    """A fallback ingress on another router in the same PoP (router miss)."""
    pop = topology.pop_of_router(router)
    for other in topology.routers.values():
        if other.name == router or other.name in exclude:
            continue
        if other.pop != pop:
            continue
        for iface in topology.interfaces():
            if iface.router == other.name:
                return iface.ingress_point()
    return None
