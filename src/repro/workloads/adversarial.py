"""Adversarial scenario pack: hostile workloads with generator-side truth.

Three attack/pathology families stress the claims the benign scenarios
never test (DESIGN.md §15):

* **Spoofed-source floods** — uniform-random or subnet-concentrated
  source spraying layered over a benign baseline with a linear ramp.
  Measures IPD state blow-up, classification pollution of benign
  ranges, and ingest throughput with admission off/exact/lossy; this is
  the workload the sketch-gated admission front-end exists for.
* **Traffic policing** — token-bucket rate enforcement clips elephant
  flows mid-trace (:class:`~repro.workloads.events.PolicingEvent`).
  The volume *profile* changes shape while the ingress does not;
  classification must survive.
* **Route-flap storms** — prefixes oscillate between ingresses at
  periods bracketing the engine's ``t``
  (:class:`~repro.workloads.events.RouteFlapEvent`), probing the decay
  function's stability envelope.

Every factory returns an :class:`AdversarialScenario` carrying an
:class:`AdversarialGroundTruth` record consumed by the evaluators in
:mod:`repro.analysis.adversarial`.  The benign sub-stream of a flood
scenario is byte-identical to its :meth:`~AdversarialScenario.baseline`
twin (the flood uses its own seeded RNG), so attack/baseline A/B
comparisons isolate the attack's effect exactly.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from ..core.iputil import IPV4, Prefix
from ..core.params import IPDParams
from ..netflow.records import FlowRecord
from ..topology.elements import IngressPoint
from ..topology.network import ISPTopology
from .events import EventSchedule, PolicingEvent, RouteFlapEvent
from .mapping import ASIngressModel, MappingUnit
from .scenarios import Scenario, default_scenario
from .traffic import TrafficConfig, TrafficGenerator

__all__ = [
    "ADVERSARIAL_SCENARIOS",
    "AdversarialGroundTruth",
    "AdversarialScenario",
    "AdversarialTrafficGenerator",
    "FloodProfile",
    "adversarial_scenario",
    "policing_clip_scenario",
    "route_flap_scenario",
    "spoofed_flood_scenario",
]

#: mean bytes of one generated flow: packets ~ 1 + Exp(8), sizes drawn
#: uniformly from {64, 576, 1500} (see TrafficGenerator._make_flow)
_MEAN_FLOW_BYTES = 9 * (64 + 576 + 1500) / 3


@dataclass(frozen=True)
class FloodProfile:
    """A spoofed-source flood layered over the benign stream.

    Sources are sprayed uniformly over the IPv4 space (``uniform``) or
    inside one concentrated subnet (``subnet``); intensity ramps
    linearly to the peak over *ramp_seconds*.  Flood flows are
    single-packet smalls (the classic reflection/SYN shape) entering
    via the victim *ingresses*.
    """

    start: float
    duration_seconds: float
    peak_flows_per_bucket: int
    ramp_seconds: float = 600.0
    mode: str = "uniform"
    subnet: Optional[Prefix] = None
    ingresses: tuple[IngressPoint, ...] = ()
    flow_bytes: int = 64
    seed: int = 1905

    def __post_init__(self) -> None:
        if self.mode not in ("uniform", "subnet"):
            raise ValueError(f"unknown flood mode: {self.mode!r}")
        if self.mode == "subnet" and self.subnet is None:
            raise ValueError("subnet mode needs a subnet")
        if not self.ingresses:
            raise ValueError("a flood needs at least one victim ingress")
        if self.peak_flows_per_bucket <= 0 or self.duration_seconds <= 0:
            raise ValueError("flood volume and duration must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration_seconds

    def intensity(self, timestamp: float) -> float:
        """Ramp factor in [0, 1] at *timestamp* (0 outside the window)."""
        if not self.start <= timestamp < self.end:
            return 0.0
        if self.ramp_seconds <= 0.0:
            return 1.0
        return min(1.0, (timestamp - self.start) / self.ramp_seconds)

    def source_space(self) -> int:
        """Number of addresses the spray draws from."""
        if self.mode == "subnet" and self.subnet is not None:
            return self.subnet.num_addresses
        return 1 << 32


@dataclass
class AdversarialGroundTruth:
    """What the adversary actually did — the evaluators' reference.

    The generator *decides* the attack, so this record is exact, not
    inferred: attacked source space, the benign plan it pollutes, the
    clip events, the flap schedule.
    """

    family: str
    #: source space the attack sprays from (flood) or targets (clip/flap)
    attacked_prefixes: tuple[Prefix, ...] = ()
    #: the benign address plan's allocated blocks
    benign_prefixes: tuple[Prefix, ...] = ()
    #: [start, end) of the attack, in trace time
    attack_window: Optional[tuple[float, float]] = None
    #: ingress points the flood converges on
    flood_ingresses: tuple[IngressPoint, ...] = ()
    #: expected distinct spoofed sources (sizes the admission sketch)
    expected_sources: int = 0
    #: the policing events, verbatim
    clipped: tuple[PolicingEvent, ...] = ()
    #: the flap schedule, verbatim
    flaps: tuple[RouteFlapEvent, ...] = ()
    notes: dict = field(default_factory=dict)


class AdversarialTrafficGenerator(TrafficGenerator):
    """Benign generator plus a flood overlay.

    The flood draws from its own seeded RNG, so the benign sub-stream
    is byte-identical with and without the attack — A/B comparisons
    (state blow-up, pollution) isolate the flood's effect exactly.
    """

    def __init__(
        self,
        topology: ISPTopology,
        models: dict[int, ASIngressModel],
        config: TrafficConfig | None = None,
        events: Optional[EventSchedule] = None,
        flood: Optional[FloodProfile] = None,
    ) -> None:
        super().__init__(topology, models, config, events)
        self.flood = flood
        self._flood_rng = random.Random(flood.seed if flood else 0)
        #: flood flows emitted so far (attack-volume bookkeeping)
        self.flood_flows = 0

    def bucket_flows(
        self, bucket_start: float, drift_buckets: int = 1
    ) -> list[FlowRecord]:
        flows = super().bucket_flows(bucket_start, drift_buckets)
        flood = self.flood
        if flood is None:
            return flows
        bucket_seconds = self.config.bucket_seconds
        count = round(
            flood.peak_flows_per_bucket
            * flood.intensity(bucket_start + bucket_seconds / 2.0)
        )
        if count <= 0:
            return flows
        flows.extend(self._flood_flows(flood, bucket_start, count))
        flows.sort(key=lambda flow: flow.timestamp)
        self.flood_flows += count
        return flows

    def _flood_flows(
        self, flood: FloodProfile, bucket_start: float, count: int
    ) -> list[FlowRecord]:
        rng = self._flood_rng
        lo = max(bucket_start, flood.start)
        hi = min(bucket_start + self.config.bucket_seconds, flood.end)
        span = max(hi - lo, 0.0)
        subnet = flood.subnet
        flows: list[FlowRecord] = []
        for __ in range(count):
            if subnet is not None:
                src_ip = subnet.value + rng.randrange(subnet.num_addresses)
            else:
                src_ip = rng.randrange(1 << 32)
            flows.append(
                FlowRecord(
                    timestamp=lo + rng.random() * span,
                    src_ip=src_ip,
                    version=IPV4,
                    ingress=rng.choice(flood.ingresses),
                    packets=1,
                    bytes=flood.flow_bytes,
                )
            )
        return flows


@dataclass
class AdversarialScenario(Scenario):
    """A :class:`Scenario` carrying an attack and its ground truth."""

    ground_truth: AdversarialGroundTruth = field(
        default_factory=lambda: AdversarialGroundTruth(family="benign")
    )
    flood: Optional[FloodProfile] = None

    def generator(self) -> TrafficGenerator:
        return AdversarialTrafficGenerator(
            self.topology,
            self.build_models(),
            self.traffic_config,
            self.events,
            flood=self.flood,
        )

    def baseline(self) -> "AdversarialScenario":
        """The attack-free twin: same benign stream, no adversary.

        Flood scenarios share the benign RNG with their baseline, so
        the only difference between the two runs is the attack itself.
        """
        stripped = EventSchedule(
            maintenance=list(self.events.maintenance),
            remaps=list(self.events.remaps),
            load_balancing=list(self.events.load_balancing),
        )
        return replace(
            self,
            name=f"{self.name}-baseline",
            events=stripped,
            flood=None,
            ground_truth=AdversarialGroundTruth(
                family="baseline",
                benign_prefixes=self.ground_truth.benign_prefixes,
            ),
        )


# -- factories -----------------------------------------------------------------


def spoofed_flood_scenario(
    mode: str = "uniform",
    duration_hours: float = 1.5,
    flows_per_bucket_peak: int = 1500,
    flood_multiplier: float = 8.0,
    ramp_minutes: float = 10.0,
    victim_ingresses: int = 1,
    seed: int = 7,
    params: IPDParams | None = None,
) -> AdversarialScenario:
    """A spoofed-source DDoS flood over the default benign workload.

    The flood ramps to ``flood_multiplier`` times the benign peak over
    *ramp_minutes*, occupies the middle half of the run, and converges
    on one victim ingress (a volumetric attack on one customer link —
    the single dominant ingress is what lets spoofed ranges classify
    and pollute; raise *victim_ingresses* to spread the attack).
    ``uniform`` sprays the whole IPv4 space (pollution pressure
    everywhere), ``subnet`` concentrates on one unallocated /12
    (localized state blow-up).
    """
    base = default_scenario(
        duration_hours=duration_hours,
        flows_per_bucket_peak=flows_per_bucket_peak,
        seed=seed,
        params=params,
    )
    config = base.traffic_config
    start = config.start_time + 0.25 * config.duration_seconds
    duration = 0.5 * config.duration_seconds
    subnet = _offplan_subnet(base) if mode == "subnet" else None
    flood = FloodProfile(
        start=start,
        duration_seconds=duration,
        peak_flows_per_bucket=int(flows_per_bucket_peak * flood_multiplier),
        ramp_seconds=ramp_minutes * 60.0,
        mode=mode,
        subnet=subnet,
        ingresses=_victim_ingresses(base.topology, victim_ingresses),
        seed=seed + 1905,
    )
    total_flood = _total_flood_flows(flood, config)
    space = flood.source_space()
    expected_sources = round(space * (1.0 - math.exp(-total_flood / space)))
    ground_truth = AdversarialGroundTruth(
        family="flood",
        attacked_prefixes=(subnet,) if subnet else (Prefix.root(IPV4),),
        benign_prefixes=tuple(block for __, block in base.plan.blocks()),
        attack_window=(flood.start, flood.end),
        flood_ingresses=flood.ingresses,
        expected_sources=expected_sources,
        notes={
            "mode": mode,
            "flood_multiplier": flood_multiplier,
            "total_flood_flows": total_flood,
        },
    )
    return AdversarialScenario(
        name=f"flood-{mode}",
        topology=base.topology,
        plan=base.plan,
        traffic_config=config,
        params=base.params,
        unit_config=base.unit_config,
        unit_overrides=base.unit_overrides,
        events=base.events,
        unit_seed=base.unit_seed,
        notes=base.notes,
        ground_truth=ground_truth,
        flood=flood,
    )


def policing_clip_scenario(
    duration_hours: float = 2.0,
    flows_per_bucket_peak: int = 3000,
    clip_ratio: float = 0.1,
    targets: int = 3,
    seed: int = 7,
    params: IPDParams | None = None,
) -> AdversarialScenario:
    """Token-bucket policing clips the heaviest elephants mid-trace.

    The heaviest unit of each of the top-*targets* ASes is policed to
    ``clip_ratio`` of its offered byte rate during the middle third of
    the run.  The policed ASes are pinned (no churn, no secondary
    links) so survival measures policing alone, not coincident remaps.
    """
    base = default_scenario(
        duration_hours=duration_hours,
        flows_per_bucket_peak=flows_per_bucket_peak,
        seed=seed,
        params=params,
    )
    target_asns = base.plan.top_asns(targets)
    for asn in target_asns:
        base.unit_overrides[asn] = replace(
            base.unit_overrides.get(asn, base.unit_config),
            churny_remap_range=(0.0, 0.0),
            multi_ingress_fraction=0.0,
        )
    models = base.build_models()
    config = base.traffic_config
    clip_start = config.start_time + config.duration_seconds / 3.0
    clip_end = clip_start + config.duration_seconds / 3.0
    total_weight = sum(p.weight for p in base.plan.profiles.values())

    events: list[PolicingEvent] = []
    for asn in target_asns:
        model = models[asn]
        unit = max(model.units, key=lambda u: u.weight)
        offered = _offered_bytes_per_second(
            unit, model, config, base.plan.profiles[asn].weight / total_weight
        )
        rate = max(1.0, clip_ratio * offered)
        event = PolicingEvent(
            prefix=unit.prefix,
            start=clip_start,
            end=clip_end,
            rate_bytes_per_second=rate,
            burst_bytes=rate * 10.0,
        )
        events.append(event)
        base.events.add(event)
    ground_truth = AdversarialGroundTruth(
        family="policing",
        attacked_prefixes=tuple(event.prefix for event in events),
        benign_prefixes=tuple(block for __, block in base.plan.blocks()),
        attack_window=(clip_start, clip_end),
        clipped=tuple(events),
        notes={"clip_ratio": clip_ratio, "target_asns": target_asns},
    )
    return AdversarialScenario(
        name="policing-clip",
        topology=base.topology,
        plan=base.plan,
        traffic_config=config,
        params=base.params,
        unit_config=base.unit_config,
        unit_overrides=base.unit_overrides,
        events=base.events,
        unit_seed=base.unit_seed,
        notes=base.notes,
        ground_truth=ground_truth,
    )


def route_flap_scenario(
    duration_hours: float = 2.0,
    flows_per_bucket_peak: int = 3000,
    periods: tuple[float, ...] = (15.0, 30.0, 60.0, 240.0, 960.0, 3840.0),
    warmup_minutes: float = 30.0,
    seed: int = 7,
    params: IPDParams | None = None,
) -> AdversarialScenario:
    """A route-flap storm at periods bracketing the engine's ``t``.

    Each period gets its own heavy prefix oscillating between two
    ingresses on *different* routers (same-router pairs would be
    absorbed by §3.2 interface bundling) from *warmup_minutes* in until
    the end of the run.  Periods above ``t`` should survive the decay
    function; the instability onset below ``t`` is the measurement.
    """
    base = default_scenario(
        duration_hours=duration_hours,
        flows_per_bucket_peak=flows_per_bucket_peak,
        seed=seed,
        params=params,
    )
    target_asns = base.plan.top_asns(len(periods))
    for asn in target_asns:
        base.unit_overrides[asn] = replace(
            base.unit_overrides.get(asn, base.unit_config),
            churny_remap_range=(0.0, 0.0),
            multi_ingress_fraction=0.0,
        )
    models = base.build_models()
    config = base.traffic_config
    # short runs clamp the warmup so the storm always has a window
    warmup = min(warmup_minutes * 60.0, config.duration_seconds / 4.0)
    flap_start = config.start_time + warmup
    flap_end = config.start_time + config.duration_seconds

    flaps: list[RouteFlapEvent] = []
    for asn, period in zip(target_asns, periods):
        unit = max(models[asn].units, key=lambda u: u.weight)
        event = RouteFlapEvent(
            prefix=unit.prefix,
            start=flap_start,
            end=flap_end,
            period_seconds=period,
            ingresses=_flap_pair(base.topology, unit),
        )
        flaps.append(event)
        base.events.add(event)
    ground_truth = AdversarialGroundTruth(
        family="flap",
        attacked_prefixes=tuple(event.prefix for event in flaps),
        benign_prefixes=tuple(block for __, block in base.plan.blocks()),
        attack_window=(flap_start, flap_end),
        flaps=tuple(flaps),
        notes={"periods": periods, "target_asns": target_asns},
    )
    return AdversarialScenario(
        name="flap-storm",
        topology=base.topology,
        plan=base.plan,
        traffic_config=config,
        params=base.params,
        unit_config=base.unit_config,
        unit_overrides=base.unit_overrides,
        events=base.events,
        unit_seed=base.unit_seed,
        notes=base.notes,
        ground_truth=ground_truth,
    )


#: scenario-name registry behind ``cli run --scenario`` and the bench group
_FACTORIES: dict[str, Callable[..., AdversarialScenario]] = {
    "flood-uniform": lambda **kw: spoofed_flood_scenario(mode="uniform", **kw),
    "flood-subnet": lambda **kw: spoofed_flood_scenario(mode="subnet", **kw),
    "policing-clip": policing_clip_scenario,
    "flap-storm": route_flap_scenario,
}

ADVERSARIAL_SCENARIOS: tuple[str, ...] = tuple(sorted(_FACTORIES))


def adversarial_scenario(name: str, **overrides: object) -> AdversarialScenario:
    """Build a registered adversarial scenario by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(ADVERSARIAL_SCENARIOS)
        raise ValueError(
            f"unknown adversarial scenario {name!r}; choose from: {known}"
        ) from None
    return factory(**overrides)


# -- internals -----------------------------------------------------------------


def _victim_ingresses(
    topology: ISPTopology, count: int = 2
) -> tuple[IngressPoint, ...]:
    """One ingress on each of the first *count* distinct routers."""
    points: list[IngressPoint] = []
    seen: set[str] = set()
    for iface in topology.interfaces():
        if iface.router in seen:
            continue
        seen.add(iface.router)
        points.append(iface.ingress_point())
        if len(points) == count:
            break
    return tuple(points)


def _offplan_subnet(scenario: Scenario, masklen: int = 12) -> Prefix:
    """A /12 disjoint from every allocated block (class-E territory)."""
    blocks = [block for __, block in scenario.plan.blocks()]
    span = 1 << (32 - masklen)
    for index in range(1 << 4):  # walk 240.0.0.0/4 in /12 steps
        candidate = Prefix.from_ip(0xF000_0000 + index * span, masklen, IPV4)
        if not any(
            candidate.contains(block) or block.contains(candidate)
            for block in blocks
        ):
            return candidate
    raise RuntimeError("no unallocated /12 found for the flood subnet")


def _total_flood_flows(flood: FloodProfile, config: TrafficConfig) -> int:
    """Deterministic total of flood flows the generator will emit."""
    total = 0
    bucket_start = config.start_time
    end_time = config.start_time + config.duration_seconds
    while bucket_start < end_time:
        total += round(
            flood.peak_flows_per_bucket
            * flood.intensity(bucket_start + config.bucket_seconds / 2.0)
        )
        bucket_start += config.bucket_seconds
    return total


def _offered_bytes_per_second(
    unit: MappingUnit,
    model: ASIngressModel,
    config: TrafficConfig,
    as_share: float,
) -> float:
    """Expected peak byte rate of one unit (for sizing the policer)."""
    family_units = [u for u in model.units if u.prefix.version == unit.prefix.version]
    unit_share = unit.weight / sum(u.weight for u in family_units)
    flows_per_bucket = config.flows_per_bucket_peak * as_share * unit_share
    return flows_per_bucket * _MEAN_FLOW_BYTES / config.bucket_seconds


def _flap_pair(
    topology: ISPTopology, unit: MappingUnit
) -> tuple[IngressPoint, IngressPoint]:
    """The unit's home ingress plus one on a different router."""
    first = topology.links[unit.primary_link].interfaces[0].ingress_point()
    second = next(
        iface.ingress_point()
        for iface in topology.interfaces()
        if iface.router != first.router
    )
    return first, second
