"""The synthetic flow generator.

Produces a time-ordered stream of :class:`~repro.netflow.records.FlowRecord`
from an ISP topology, an address plan and per-AS mapping-unit models.
Stands in for the paper's 25-hour / 48-billion-flow Netflow capture (§4):
structure is faithful (Zipf AS mix, diurnal load, CDN remapping, noise,
events, LAG spreading), scale is configurable.

Every flow's ``ingress`` field *is* the ground truth — the generator
decides where traffic really enters, IPD has to rediscover it.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..core.iputil import IPV4, IPV6
from ..netflow.records import FlowBatch, FlowRecord, iter_flow_batches
from ..topology.elements import IngressPoint, Link
from ..topology.network import ISPTopology
from .diurnal import DiurnalModel
from .events import EventSchedule
from .mapping import ASIngressModel, MappingUnit

__all__ = ["TrafficConfig", "TrafficGenerator"]


@dataclass(frozen=True)
class TrafficConfig:
    """Volume and behaviour knobs of a generator run."""

    start_time: float = 0.0
    duration_seconds: float = 3600.0
    bucket_seconds: float = 60.0
    #: total flows per bucket across all ASes, at the diurnal peak
    flows_per_bucket_peak: int = 2000
    #: share of flows that enter via a random wrong link (noise/spoofing)
    noise_share: float = 0.02
    #: at low demand, a remapping CDN unit consolidates onto the home
    #: link with this probability (drives the Fig. 11/12 joins)
    cdn_night_consolidation: float = 0.85
    #: demand level (diurnal factor) below which CDN remaps consolidate
    cdn_consolidate_below: float = 0.55
    #: demand level above which CDN remaps fan out across sites
    cdn_fanout_above: float = 0.8
    #: remap-rate multiplier for CDN units, scaled by demand change
    cdn_remap_boost: float = 6.0
    #: high-demand scaling of a CDN unit's home affinity: the primary
    #: site overflows and remaps fan out across sites, which rebuilds
    #: the prefix count toward the Fig. 11/12 evening peak
    cdn_day_affinity_scale: float = 0.5
    #: §5.6 violations: chance a remapping tier-1 unit lands on a third
    #: party's link, growing linearly per simulated day
    violation_base: float = 0.0
    violation_growth_per_day: float = 0.0
    #: restrict flow emission to a daily local-hour window (start, end);
    #: unit drift for skipped buckets is applied in one aggregated step.
    #: Enables multi-week prime-time runs (Fig. 10/17) at feasible cost.
    active_hours: Optional[tuple[float, float]] = None
    #: share of flows sourced from IPv6 units (requires an address plan
    #: built with ``include_ipv6=True``)
    v6_flow_share: float = 0.0
    seed: int = 23
    diurnal: DiurnalModel = field(default_factory=DiurnalModel)

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0 or self.bucket_seconds <= 0:
            raise ValueError("durations must be positive")
        if not 0.0 <= self.noise_share < 1.0:
            raise ValueError("noise_share must be in [0, 1)")


class TrafficGenerator:
    """Generates the flow stream bucket by bucket."""

    def __init__(
        self,
        topology: ISPTopology,
        models: dict[int, ASIngressModel],
        config: TrafficConfig | None = None,
        events: Optional[EventSchedule] = None,
    ) -> None:
        self.topology = topology
        self.models = models
        self.config = config or TrafficConfig()
        self.events = events or EventSchedule()
        self._rng = random.Random(self.config.seed)
        # Per-AS, per-family unit lists and cumulative weights for
        # O(log n) unit sampling.
        self._units_by_family: dict[tuple[int, int], list[MappingUnit]] = {}
        self._unit_cdf: dict[tuple[int, int], list[float]] = {}
        for asn, model in models.items():
            for version in (IPV4, IPV6):
                units = [
                    unit for unit in model.units
                    if unit.prefix.version == version
                ]
                if not units:
                    continue
                self._units_by_family[(asn, version)] = units
                self._unit_cdf[(asn, version)] = list(
                    itertools.accumulate(unit.weight for unit in units)
                )
        total_weight = sum(model.profile.weight for model in models.values())
        self._as_share = {
            asn: model.profile.weight / total_weight
            for asn, model in models.items()
        }
        #: remap log: (timestamp, unit prefix) — stability ground truth
        self.remap_log: list[tuple[float, str]] = []
        # Token-bucket state is per-run: a scenario's shared schedule
        # stays immutable, so every fresh generator clips identically.
        self._policers = self.events.make_policers()
        #: clip log: (timestamp, policed prefix, offered bytes, granted
        #: bytes) — policing ground truth; granted 0 means dropped
        self.clip_log: list[tuple[float, str, int, int]] = []

    # ------------------------------------------------------------------ stream

    def flows(self) -> Iterator[FlowRecord]:
        """Yield the full run as a time-ordered flow stream."""
        config = self.config
        bucket_start = config.start_time
        end_time = config.start_time + config.duration_seconds
        skipped = 0
        while bucket_start < end_time:
            if not self._is_active(bucket_start):
                skipped += 1
            else:
                yield from self.bucket_flows(bucket_start, drift_buckets=skipped + 1)
                skipped = 0
            bucket_start += config.bucket_seconds

    def batches(self, batch_size: int = 0) -> Iterator[FlowBatch]:
        """Yield the run as columnar batches for the engine's batched ingest.

        One batch per maximal same-family run within each bucket (whole
        buckets, in the common single-family case), so concatenating the
        batches reproduces :meth:`flows` exactly.  A positive
        *batch_size* additionally caps rows per batch.
        """
        config = self.config
        bucket_start = config.start_time
        end_time = config.start_time + config.duration_seconds
        skipped = 0
        while bucket_start < end_time:
            if not self._is_active(bucket_start):
                skipped += 1
            else:
                yield from self.bucket_batches(
                    bucket_start, drift_buckets=skipped + 1, batch_size=batch_size
                )
                skipped = 0
            bucket_start += config.bucket_seconds

    def bucket_batches(
        self,
        bucket_start: float,
        drift_buckets: int = 1,
        batch_size: int = 0,
    ) -> Iterator[FlowBatch]:
        """One bucket of traffic as columnar same-family batches."""
        flows = self.bucket_flows(bucket_start, drift_buckets)
        if not flows:
            return iter(())
        limit = batch_size if batch_size > 0 else max(1, len(flows))
        return iter_flow_batches(flows, limit)

    def _is_active(self, bucket_start: float) -> bool:
        window = self.config.active_hours
        if window is None:
            return True
        from .diurnal import hour_of_day

        hour = hour_of_day(bucket_start)
        start, end = window
        if start <= end:
            return start <= hour < end
        return hour >= start or hour < end  # window wraps midnight

    def bucket_flows(
        self, bucket_start: float, drift_buckets: int = 1
    ) -> list[FlowRecord]:
        """Generate one bucket: update unit states, then emit flows.

        *drift_buckets* > 1 compresses the remap trials of skipped
        (inactive-window) buckets into this one.
        """
        config = self.config
        rng = self._rng
        load = config.diurnal.factor(bucket_start)
        total_flows = round(config.flows_per_bucket_peak * load)

        self._update_units(bucket_start, drift_buckets)

        flows: list[FlowRecord] = []
        v6_share = config.v6_flow_share
        for asn, model in self.models.items():
            if not model.units:
                continue
            expected = total_flows * self._as_share[asn]
            for version, share in ((IPV4, 1.0 - v6_share), (IPV6, v6_share)):
                if share <= 0.0:
                    continue
                units = self._units_by_family.get((asn, version))
                if not units:
                    continue
                cdf = self._unit_cdf[(asn, version)]
                total = cdf[-1]
                count = _sample_count(expected * share, rng)
                for __ in range(count):
                    unit = units[bisect.bisect_left(cdf, rng.random() * total)]
                    flows.append(self._make_flow(bucket_start, model, unit))
        flows.sort(key=lambda flow: flow.timestamp)
        if self._policers:
            flows = self._apply_policing(flows)
        return flows

    # ------------------------------------------------------------------ internals

    def _apply_policing(self, flows: list[FlowRecord]) -> list[FlowRecord]:
        """Clip a sorted bucket through the active token buckets.

        Runs after the per-bucket sort so each bucket consumes its
        tokens in timestamp order (a token bucket is stateful in time).
        A flow that exhausts its bucket is clipped to the granted bytes
        (packets rescaled, never below 1); a flow granted nothing is
        dropped — exactly what a policer does to the wire.
        """
        policed: list[FlowRecord] = []
        for flow in flows:
            dropped = False
            for state in self._policers:
                if not state.event.applies(
                    flow.timestamp, flow.src_ip, flow.version
                ):
                    continue
                granted = state.grant(flow.timestamp, flow.bytes)
                self.clip_log.append(
                    (flow.timestamp, str(state.event.prefix), flow.bytes, granted)
                )
                if granted <= 0:
                    dropped = True
                elif granted < flow.bytes:
                    packets = max(1, round(flow.packets * granted / flow.bytes))
                    flow = flow._replace(packets=packets, bytes=granted)
                break
            if not dropped:
                policed.append(flow)
        return policed

    def _make_flow(
        self, bucket_start: float, model: ASIngressModel, unit: MappingUnit
    ) -> FlowRecord:
        config = self.config
        rng = self._rng
        timestamp = bucket_start + rng.random() * config.bucket_seconds
        src_ip = unit.pick_source(rng)

        if rng.random() < config.noise_share:
            link_id = rng.choice(model.candidate_links)
        elif unit.secondary_link is not None and rng.random() < unit.secondary_share:
            link_id = unit.secondary_link
        else:
            link_id = unit.primary_link
        version = unit.prefix.version
        link = self.topology.links[link_id]
        ingress = self._pick_interface(link)
        ingress = self.events.rewrite(timestamp, src_ip, version, ingress, rng)

        packets = 1 + int(rng.expovariate(1.0 / 8.0))
        avg_bytes = rng.choice((64, 576, 1500))
        return FlowRecord(
            timestamp=timestamp,
            src_ip=src_ip,
            version=version,
            ingress=ingress,
            packets=packets,
            bytes=packets * avg_bytes,
        )

    def _pick_interface(self, link: Link) -> IngressPoint:
        """LAG links spread flows evenly across member interfaces."""
        if len(link.interfaces) == 1:
            return link.interfaces[0].ingress_point()
        return self._rng.choice(link.interfaces).ingress_point()

    def _update_units(self, now: float, drift_buckets: int = 1) -> None:
        """Advance every unit's remap state machine.

        With *drift_buckets* > 1 the per-bucket remap probability ``p``
        is compounded to ``1 - (1-p)^n`` so that time skipped by an
        inactive window still drifts the mapping at the correct rate.
        """
        config = self.config
        rng = self._rng
        day_fraction = (now - config.start_time) / 86_400.0
        violation_rate = config.violation_base + (
            config.violation_growth_per_day * day_fraction
        )
        demand_change = config.diurnal.change_rate(now)
        demand = config.diurnal.factor(now)

        for asn, model in self.models.items():
            profile = model.profile
            for unit in model.units:
                probability = unit.remap_probability
                if probability <= 0.0:
                    continue
                if profile.is_cdn:
                    probability *= 1.0 + config.cdn_remap_boost * demand_change
                if drift_buckets > 1:
                    probability = 1.0 - (1.0 - min(probability, 1.0)) ** drift_buckets
                if rng.random() >= probability:
                    continue
                self._remap_unit(unit, model, now, demand, violation_rate)

    def _remap_unit(
        self,
        unit: MappingUnit,
        model: ASIngressModel,
        now: float,
        demand: float,
        violation_rate: float,
    ) -> None:
        rng = self._rng
        profile = model.profile
        if profile.is_tier1 and violation_rate > 0 and rng.random() < violation_rate:
            indirect = [
                link_id
                for link_id in model.candidate_links
                if self.topology.links[link_id].neighbor_asn != profile.asn
            ]
            if indirect:
                unit.primary_link = rng.choice(indirect)
                unit.last_remap = now
                self.remap_log.append((now, str(unit.prefix)))
                return
        config = self.config
        low_demand = demand <= config.cdn_consolidate_below
        high_demand = demand >= config.cdn_fanout_above
        affinity = unit.home_affinity
        if profile.is_cdn and high_demand:
            affinity *= config.cdn_day_affinity_scale
        if (
            profile.is_cdn
            and low_demand
            and rng.random() < config.cdn_night_consolidation
        ):
            target = model.home_link
        elif rng.random() < affinity:
            # a remap redraws the serving site; the home (BGP-preferred)
            # link is drawn with the unit's affinity, which makes the
            # long-run home share equal the Fig. 16 symmetry anchor
            target = model.home_link
        else:
            others = [
                link_id
                for link_id in model.candidate_links
                if link_id not in (unit.primary_link, model.home_link)
            ]
            target = rng.choice(others) if others else unit.primary_link
        if target != unit.primary_link:
            unit.primary_link = target
            unit.last_remap = now
            self.remap_log.append((now, str(unit.prefix)))


def _sample_count(expected: float, rng: random.Random) -> int:
    """Integer draw with mean *expected* (Poisson-ish, cheap)."""
    base = int(expected)
    remainder = expected - base
    jitter = rng.gauss(0.0, max(0.05 * expected, 0.5))
    count = base + (1 if rng.random() < remainder else 0) + round(jitter)
    return max(0, count)
