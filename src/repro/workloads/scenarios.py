"""Canned experiment scenarios.

Each paper experiment needs a workload with particular structure (a
maintenance window, a violation trend, weeks of prime-time snapshots…).
A :class:`Scenario` bundles everything needed to run one: the topology,
the address plan, unit configuration, traffic config, event schedule and
scaled IPD parameters — and knows how to produce fresh deterministic
flow streams, the matching BGP table and the analysis group sets.

**Scale note.**  The paper's deployment sees ~32 M flows/minute; the
Python substrate replays thousands.  IPD's decisions depend only on the
ratio of traffic to the ``n_cidr`` thresholds, so scenarios scale
``n_cidr_factor`` down with the flow rate (DESIGN.md §5).  The default
pairing (factor 0.25 at 3,000 flows/bucket) makes the /0 root split
within minutes, just as factor 64 does at 32 M flows/minute.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional

from typing import TYPE_CHECKING

from ..core.params import IPDParams
from ..runtime.pipeline import Pipeline
from ..runtime.result import RunResult
from ..netflow.records import FlowRecord
from ..topology.elements import IngressPoint
from ..topology.generator import TopologySpec, generate_topology
from ..topology.network import ISPTopology
from .address_space import AddressPlan
from .diurnal import DiurnalModel
from .events import EventSchedule, LoadBalanceEvent, MaintenanceEvent, RemapEvent
from .mapping import ASIngressModel, UnitConfig, build_units
from .traffic import TrafficConfig, TrafficGenerator

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..bgp.announcements import AnnouncementConfig
    from ..bgp.rib import BGPTable
    from ..core.admission import AdmissionConfig

__all__ = [
    "Scenario",
    "SCALED_PARAMS",
    "default_scenario",
    "dualstack_scenario",
    "events_scenario",
    "reaction_scenario",
    "longitudinal_scenario",
    "violations_scenario",
    "load_balancing_scenario",
]

#: production Table-1 parameters rescaled to synthetic traffic volume
SCALED_PARAMS = IPDParams(
    n_cidr_factor_v4=0.25, n_cidr_factor_v6=0.1, drop_threshold=0.25
)

#: simulation epoch starts at local midnight; noon of day one
_NOON = 12 * 3600.0


@dataclass
class Scenario:
    """A fully specified, reproducible experiment setup."""

    name: str
    topology: ISPTopology
    plan: AddressPlan
    traffic_config: TrafficConfig
    params: IPDParams = field(default_factory=lambda: SCALED_PARAMS)
    unit_config: UnitConfig = field(default_factory=UnitConfig)
    unit_overrides: dict[int, UnitConfig] = field(default_factory=dict)
    events: EventSchedule = field(default_factory=EventSchedule)
    unit_seed: int = 11
    #: free-form scenario annotations (e.g. which AS carries which event)
    notes: dict = field(default_factory=dict)

    # -- workload -----------------------------------------------------------

    def build_models(self) -> dict[int, ASIngressModel]:
        """Fresh, deterministic per-AS unit models (safe to mutate)."""
        return build_units(
            self.topology,
            self.plan.profiles,
            config=self.unit_config,
            overrides=self.unit_overrides,
            seed=self.unit_seed,
        )

    def generator(self) -> TrafficGenerator:
        """A fresh generator; identical stream on every call."""
        return TrafficGenerator(
            self.topology, self.build_models(), self.traffic_config, self.events
        )

    def flow_source(self) -> Callable[[], Iterable[FlowRecord]]:
        """Factory form used by the parameter study runner."""
        return lambda: self.generator().flows()

    # -- substrate views ------------------------------------------------------

    def bgp_table(
        self, timestamp: float = 0.0, config: "Optional[AnnouncementConfig]" = None
    ) -> "BGPTable":
        """The RIB consistent with this scenario's plan and home links."""
        from ..bgp.announcements import generate_table

        return generate_table(
            self.topology, self.plan, self.build_models(), config, timestamp
        )

    def asn_of(self) -> Callable[[int], Optional[int]]:
        from ..analysis.accuracy import asn_lookup_from_blocks

        return asn_lookup_from_blocks(self.plan.blocks())

    def groups(self) -> dict[str, set[int]]:
        """The paper's TOP5/TOP20 traffic groups."""
        return {
            "TOP5": set(self.plan.top_asns(5)),
            "TOP20": set(self.plan.top_asns(20)),
        }

    def tier1_asns(self) -> list[int]:
        return [
            profile.asn
            for profile in self.plan.profiles.values()
            if profile.is_tier1
        ]

    # -- execution -------------------------------------------------------------

    def run(
        self,
        snapshot_seconds: float = 300.0,
        include_unclassified: bool = False,
        keep_flows: bool = True,
        shards: int = 1,
        executor: str = "serial",
        workers: Optional[int] = None,
        admission: "Optional[AdmissionConfig]" = None,
    ) -> tuple[list[FlowRecord], RunResult]:
        """Replay the scenario through IPD; returns (flows, results).

        With ``keep_flows=False`` the stream is not materialized (for
        long runs where only snapshots matter) and the first element is
        an empty list.  ``shards`` / ``executor`` / ``workers`` select
        the runtime topology — results are identical for every choice,
        only throughput changes.  ``admission`` attaches the sketch-gated
        front-end; ``exact`` mode keeps results identical too, ``lossy``
        trades never-promoted mice for ingest throughput.
        """
        with Pipeline(
            self.params,
            shards=shards,
            executor=executor,
            workers=workers,
            snapshot_seconds=snapshot_seconds,
            include_unclassified=include_unclassified,
            admission=admission,
        ) as pipeline:
            if keep_flows:
                flows = list(self.generator().flows())
                result = pipeline.run(flows)
                return flows, result
            result = pipeline.run(self.generator().flows())
            return [], result


def _base_topology_and_plan(
    seed: int,
) -> tuple[TopologySpec, ISPTopology, AddressPlan]:
    spec = TopologySpec(seed=seed)
    topology = generate_topology(spec)
    plan = AddressPlan.build(
        hypergiant_asns=spec.hypergiant_asns,
        peer_asns=spec.peer_asns,
        tier1_asns=spec.transit_asns,
    )
    return spec, topology, plan


def _symmetry_overrides(
    plan: AddressPlan, base: UnitConfig
) -> dict[int, UnitConfig]:
    """Per-group symmetry anchors for the Fig. 16 targets.

    tier-1 ASes ~91 %, TOP5 (hypergiants) ~77 %, the tail ~55 %.
    """
    overrides: dict[int, UnitConfig] = {}
    top5 = set(plan.top_asns(5))
    for asn, profile in plan.profiles.items():
        if profile.is_tier1:
            overrides[asn] = replace(base, symmetry_probability=0.93)
        elif asn in top5:
            overrides[asn] = replace(base, symmetry_probability=0.80)
        else:
            overrides[asn] = replace(base, symmetry_probability=0.55)
    return overrides


def default_scenario(
    duration_hours: float = 6.0,
    flows_per_bucket_peak: int = 3500,
    start_hour: float = 12.0,
    seed: int = 7,
    params: IPDParams | None = None,
) -> Scenario:
    """The general-purpose workload behind Figs. 2-6, 9, 11, 15, 16.

    Zipf AS mix calibrated to TOP5 = 52 % of volume, diurnal load, CDN
    churn, 2 % ingress noise, ~8 % genuinely multi-ingress units, 10 %
    elephants.
    """
    __, topology, plan = _base_topology_and_plan(seed)
    unit_config = UnitConfig(
        multi_ingress_fraction=0.04,
        secondary_share_range=(0.10, 0.45),
        elephant_fraction=0.20,
        churny_remap_range=(0.002, 0.018),
    )
    traffic_config = TrafficConfig(
        start_time=start_hour * 3600.0,
        duration_seconds=duration_hours * 3600.0,
        flows_per_bucket_peak=flows_per_bucket_peak,
        noise_share=0.015,
        seed=seed + 100,
        diurnal=DiurnalModel(trough_ratio=0.35),
    )
    return Scenario(
        name="default",
        topology=topology,
        plan=plan,
        traffic_config=traffic_config,
        params=params or SCALED_PARAMS,
        unit_config=unit_config,
        unit_overrides=_symmetry_overrides(plan, unit_config),
        unit_seed=seed + 4,
    )


def dualstack_scenario(
    duration_hours: float = 4.0,
    flows_per_bucket_peak: int = 3500,
    v6_flow_share: float = 0.2,
    seed: int = 7,
) -> Scenario:
    """A dual-stack workload exercising the IPv6 (/48, factor-0.1) path.

    Every AS additionally originates an IPv6 /32, carved into /40-/46
    units with /48 source slots; *v6_flow_share* of the flow volume is
    IPv6.  Used by the IPv6 benches/tests — the v4-only scenarios stay
    cheaper.
    """
    spec = TopologySpec(seed=seed)
    topology = generate_topology(spec)
    plan = AddressPlan.build(
        hypergiant_asns=spec.hypergiant_asns,
        peer_asns=spec.peer_asns,
        tier1_asns=spec.transit_asns,
        include_ipv6=True,
    )
    unit_config = UnitConfig(
        multi_ingress_fraction=0.04,
        secondary_share_range=(0.10, 0.45),
        elephant_fraction=0.20,
        churny_remap_range=(0.002, 0.018),
    )
    traffic_config = TrafficConfig(
        start_time=12.0 * 3600.0,
        duration_seconds=duration_hours * 3600.0,
        flows_per_bucket_peak=flows_per_bucket_peak,
        noise_share=0.015,
        v6_flow_share=v6_flow_share,
        seed=seed + 100,
        diurnal=DiurnalModel(trough_ratio=0.35),
    )
    # The v6 minimum-sample curve is anchored at /64, so its /0 root
    # requires factor * 2^32 samples — at simulation volume the factor
    # must shrink accordingly (the deployment's factor 24 is matched to
    # ~4M flows/s; see DESIGN.md §5).
    params = SCALED_PARAMS.with_overrides(n_cidr_factor_v6=1e-7)
    return Scenario(
        name="dualstack",
        topology=topology,
        plan=plan,
        traffic_config=traffic_config,
        params=params,
        unit_config=unit_config,
        unit_overrides=_symmetry_overrides(plan, unit_config),
        unit_seed=seed + 4,
    )


def events_scenario(
    duration_hours: float = 24.0,
    flows_per_bucket_peak: int = 3000,
    seed: int = 7,
) -> Scenario:
    """Fig. 7/8: TOP5 ASes with distinct, diagnosable miss causes.

    * AS1 (rank 1): router maintenance around 11 AM and 11 PM diverts a
      LAG member to two *other* interfaces on the same router —
      interface misses at exactly those hours.
    * AS3 (rank 3): a CDN mapping misalignment sends one prefix's
      traffic to a router in another country during the busy afternoon
      — PoP misses correlated with load.
    * AS4 (rank 4): demand-driven CDN remaps (high churn) — PoP misses
      tracking the diurnal curve.
    """
    scenario = default_scenario(
        duration_hours=duration_hours,
        flows_per_bucket_peak=flows_per_bucket_peak,
        start_hour=0.0,
        seed=seed,
    )
    scenario.name = "events"
    topology, plan = scenario.topology, scenario.plan
    models = scenario.build_models()
    ranked = plan.top_asns(5)

    events = EventSchedule()

    # --- "AS1" role: maintenance on a LAG member of a busy link ---------
    # The paper's AS1 had a *bundle* classified; during maintenance, part
    # of its traffic arrived on other interfaces of the same router
    # (interface misses) while the bulk kept entering the bundle.  We
    # pick the highest-ranked AS whose home link is a LAG so the
    # classification survives the partial diversion.
    maintenance_asn = next(
        (asn for asn in ranked
         if len(topology.links[models[asn].home_link].interfaces) >= 2),
        ranked[0],
    )
    maint_link = topology.links[models[maintenance_asn].home_link]
    maint_router = maint_link.router
    fallback_iface = _other_interface_on(topology, maint_router,
                                         maint_link.link_id)
    maintenance_hours = (11.0, 23.0)
    if fallback_iface is not None:
        for hour in maintenance_hours:
            events.add(
                MaintenanceEvent(
                    router=maint_router,
                    interface=maint_link.interfaces[0].name,
                    start=hour * 3600.0,
                    end=(hour + 0.75) * 3600.0,
                    fallback=fallback_iface,
                )
            )
    scenario.notes["maintenance_asn"] = maintenance_asn
    scenario.notes["maintenance_hours"] = maintenance_hours

    # --- AS3 role: mapping misalignment into another country -------------
    # The paper's AS3 shows *sustained* PoP misses tracking its demand
    # curve: the CDN's mapping keeps sending changing user groups to the
    # wrong site.  A single long remap would be learned by IPD within
    # minutes (it is exactly the Fig. 13 reaction), so the misalignment
    # rotates: each hour of the busy window a different heavy unit is
    # mapped into another country for 45 minutes — IPD chases it all
    # afternoon, as the real CDN made it do.
    as3 = ranked[2]
    heavy_units = sorted(
        models[as3].units, key=lambda u: -u.weight
    )[:8]
    foreign = _ingress_in_other_country(
        topology, topology.links[heavy_units[0].primary_link].router
    )
    remap_window = (13.0, 21.0)
    if foreign is not None:
        for day_start in _day_starts(scenario.traffic_config):
            for slot, hour in enumerate(
                range(int(remap_window[0]), int(remap_window[1]))
            ):
                unit = heavy_units[slot % len(heavy_units)]
                events.add(
                    RemapEvent(
                        prefix=unit.prefix,
                        start=day_start + hour * 3600.0,
                        end=day_start + (hour + 0.75) * 3600.0,
                        new_ingress=foreign,
                    )
                )
    scenario.notes["remap_asn"] = as3
    scenario.notes["remap_window"] = remap_window

    # --- AS4 role: crank up demand-driven churn ---------------------------
    as4 = ranked[3]
    scenario.notes["churn_asn"] = as4
    scenario.unit_overrides[as4] = replace(
        scenario.unit_overrides.get(as4, scenario.unit_config),
        churny_remap_range=(0.02, 0.10),
        elephant_fraction=0.0,
    )
    scenario.traffic_config = replace(
        scenario.traffic_config, cdn_remap_boost=10.0
    )
    scenario.events = events
    return scenario


def reaction_scenario(seed: int = 7) -> Scenario:
    """Fig. 13/14: a /23 whose ingress changes during router maintenance.

    The first TOP5 AS's first unit plays the paper's ``x.y.196.0/23``:
    stable on one interface, then permanently moved to a different
    interface of the same router on "2020-07-14" (here: hour 12 of day
    2), reproducing the counter/confidence trajectory of Fig. 14.
    """
    scenario = default_scenario(
        duration_hours=96.0, flows_per_bucket_peak=3000, start_hour=0.0, seed=seed
    )
    scenario.name = "reaction"
    topology = scenario.topology
    models = scenario.build_models()
    as1 = scenario.plan.top_asns(5)[0]
    model = models[as1]
    # prefer a heavy, reasonably coarse unit — the paper's Fig. 13 watches
    # a /23 with sustained traffic
    coarse = [u for u in model.units if u.prefix.masklen <= 24]
    unit = max(coarse or model.units, key=lambda u: u.weight)
    link = topology.links[unit.primary_link]
    # move to a different router: same-router moves would be absorbed
    # into an interface bundle rather than triggering a reclassification
    other_link = next(
        l for l in topology.links.values() if l.router != link.router
    )
    new_iface = other_link.interfaces[0].ingress_point()
    switch_time = 36.0 * 3600.0
    scenario.events.add(
        RemapEvent(
            prefix=unit.prefix,
            start=switch_time,
            end=scenario.traffic_config.duration_seconds,
            new_ingress=new_iface,
        )
    )
    # pin the observed unit: no competing churn on it
    scenario.unit_overrides[as1] = replace(
        scenario.unit_overrides.get(as1, scenario.unit_config),
        churny_remap_range=(0.0005, 0.002),
        multi_ingress_fraction=0.0,
    )
    return scenario


def longitudinal_scenario(
    days: int = 45,
    flows_per_bucket_peak: int = 2500,
    seed: int = 7,
) -> Scenario:
    """Fig. 10: weeks of daily 8 PM prime-time windows.

    Traffic is emitted only 19:30-20:30 each day (unit drift for the
    skipped hours is compounded), keeping multi-week simulated runs
    affordable while preserving the daily comparison the paper makes.
    """
    scenario = default_scenario(
        duration_hours=days * 24.0,
        flows_per_bucket_peak=flows_per_bucket_peak,
        start_hour=19.0,
        seed=seed,
    )
    scenario.name = "longitudinal"
    # IPD restarts cold each day (state expires between windows); the
    # /0 -> /28 split cascade needs ~40 minutes, so the window must be
    # wide enough that prime-time snapshots are taken on a warm trie.
    scenario.traffic_config = replace(
        scenario.traffic_config,
        start_time=19.0 * 3600.0,
        duration_seconds=days * 86_400.0,
        active_hours=(19.0, 21.0),
    )
    scenario.notes["snapshot_hour"] = 20.75
    return scenario


def violations_scenario(
    days: int = 120,
    flows_per_bucket_peak: int = 2000,
    seed: int = 7,
) -> Scenario:
    """Fig. 17: tier-1 prefixes drifting onto third-party links.

    A small base violation rate grows linearly with simulated time —
    the paper observes +50 % from late 2019 and a doubling by 2020.
    """
    scenario = longitudinal_scenario(
        days=days, flows_per_bucket_peak=flows_per_bucket_peak, seed=seed
    )
    scenario.name = "violations"
    scenario.traffic_config = replace(
        scenario.traffic_config,
        violation_base=0.03,
        violation_growth_per_day=0.0008,
    )
    # tier-1 units must remap at all for violations to appear
    for asn, profile in scenario.plan.profiles.items():
        if profile.is_tier1:
            scenario.unit_overrides[asn] = replace(
                scenario.unit_overrides.get(asn, scenario.unit_config),
                elephant_fraction=0.0,
                churny_remap_range=(0.01, 0.04),
            )
    return scenario


def load_balancing_scenario(
    duration_hours: float = 4.0, seed: int = 7
) -> Scenario:
    """§5.8: a hypergiant balances one prefix over two routers.

    IPD is expected to *fail to classify* the balanced prefix — the
    documented design limitation.
    """
    scenario = default_scenario(
        duration_hours=duration_hours, flows_per_bucket_peak=3000, seed=seed
    )
    scenario.name = "load-balancing"
    topology = scenario.topology
    models = scenario.build_models()
    as1 = scenario.plan.top_asns(5)[0]
    unit = max(models[as1].units, key=lambda u: u.weight)
    routers = list(topology.routers)
    first = topology.links[unit.primary_link].interfaces[0].ingress_point()
    other_router = next(r for r in routers if r != first.router)
    second = next(
        iface.ingress_point()
        for iface in topology.interfaces()
        if iface.router == other_router
    )
    scenario.events.add(
        LoadBalanceEvent(
            prefix=unit.prefix,
            start=scenario.traffic_config.start_time,
            end=scenario.traffic_config.start_time
            + scenario.traffic_config.duration_seconds,
            choices=(first, second),
        )
    )
    return scenario


# -- small topology helpers ----------------------------------------------------


def _other_interface_on(
    topology: ISPTopology, router: str, exclude_link: str
) -> Optional[IngressPoint]:
    """Another interface on the same router (an interface-miss target)."""
    for iface in topology.interfaces():
        if iface.router == router and iface.link_id != exclude_link:
            return iface.ingress_point()
    return None


def _ingress_in_other_country(
    topology: ISPTopology, router: str
) -> Optional[IngressPoint]:
    """An ingress point in a different country (a PoP-miss target)."""
    country = topology.country_of_router(router)
    for iface in topology.interfaces():
        if topology.country_of_router(iface.router) != country:
            return iface.ingress_point()
    return None


def _day_starts(config: TrafficConfig) -> list[float]:
    """Midnights covered by a traffic config's duration."""
    first_day = int(config.start_time // 86_400)
    last_day = int((config.start_time + config.duration_seconds) // 86_400)
    return [day * 86_400.0 for day in range(first_day, last_day + 1)]
