"""The mapping-unit model: how source ranges pick their ingress point.

Hypergiant traffic enters where the sending network decides — the CDN's
user→server mapping, not the ISP's BGP, picks the site and hence the
ingress link (§2).  We model each source AS's address space as a set of
*mapping units*: contiguous sub-ranges (of varied size, /20–/26 by
default) that share one primary ingress link at any moment and get
remapped over time.

Units are the knob behind nearly every evaluation result:

* remap rates control the stability distribution (Fig. 2, Fig. 15);
* secondary links with partial shares create multi-ingress prefixes
  (Fig. 3, Fig. 4);
* the choice between a "home" link (the one BGP prefers) and other
  candidate links sets the path-symmetry ratio (Fig. 16);
* CDN units consolidate onto few sites at night and fan out at peak,
  which drives the diurnal prefix-count swing (Fig. 11, Fig. 12);
* tier-1 units occasionally mapped onto *another* neighbor's link are
  the §5.6 peering-agreement violations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..core.iputil import IPV4, IPV6, Prefix
from ..topology.elements import Link, LinkType
from ..topology.network import ISPTopology
from .address_space import ASProfile

__all__ = ["MappingUnit", "ASIngressModel", "build_units", "UnitConfig"]


@dataclass
class MappingUnit:
    """One contiguous source range with a common ingress assignment."""

    prefix: Prefix
    asn: int
    #: relative traffic weight within the AS
    weight: float
    #: current primary link (key into the topology's link table)
    primary_link: str
    #: optional secondary ingress and the share of flows it receives
    secondary_link: Optional[str] = None
    secondary_share: float = 0.0
    #: per-bucket remap probability; 0 makes the unit an "elephant"
    remap_probability: float = 0.0
    #: distinct sub-blocks that actually source traffic (/28s for IPv4,
    #: /48s for IPv6 — the respective ``cidr_max`` granularity)
    active_slots: tuple[int, ...] = ()
    #: address span of one slot (16 for IPv4 /28s, 2^80 for IPv6 /48s)
    slot_size: int = 16
    #: probability that a remap lands back on the AS home link; since a
    #: remap redraws the target independently of the current state, the
    #: long-run fraction of time on the home link equals this value —
    #: which is how the Fig. 16 per-group symmetry targets are anchored
    home_affinity: float = 0.6
    #: timestamp of the unit's last remap (stability bookkeeping)
    last_remap: float = 0.0

    def pick_source(self, rng: random.Random) -> int:
        """Draw a source address from one of the unit's active slots."""
        slot = rng.choice(self.active_slots)
        host_span = min(self.slot_size, 1 << 20)
        return self.prefix.value + slot * self.slot_size + rng.randrange(
            host_span
        )


@dataclass(frozen=True)
class UnitConfig:
    """Knobs for carving an AS's blocks into mapping units."""

    min_masklen: int = 20
    max_masklen: int = 26
    #: relative frequency of each unit mask (indexed from min_masklen);
    #: most real blocks are /22-/24 datacenter allocations, finer units
    #: (the CDN /25-/26 mappings) are a minority
    mask_weights: tuple[float, ...] = (2.0, 2.0, 3.0, 3.0, 4.0, 2.0, 1.0)
    max_units_per_as: int = 32
    #: probability that a unit starts on the same link as its
    #: predecessor in address order — neighboring subnets are usually
    #: served by the same site, so /24s rarely mix ingresses (Fig. 3)
    spatial_coherence: float = 0.85
    #: fraction of units that get a secondary ingress link
    multi_ingress_fraction: float = 0.25
    #: secondary-share range (uniform)
    secondary_share_range: tuple[float, float] = (0.05, 0.45)
    #: per-bucket remap probability range for "churny" units
    churny_remap_range: tuple[float, float] = (0.008, 0.05)
    #: fraction of units that are long-term stable elephants
    elephant_fraction: float = 0.10
    #: number of active /28 source slots per unit
    slots_per_unit: tuple[int, int] = (2, 6)
    #: probability that a unit's primary is the AS's BGP-preferred link
    symmetry_probability: float = 0.62
    #: probability that a tier-1 unit enters via a third party (§5.6)
    violation_probability: float = 0.0
    #: IPv6 unit mask bounds (units inside each AS's /40 allocation)
    v6_min_masklen: int = 44
    v6_max_masklen: int = 47


@dataclass
class ASIngressModel:
    """Per-AS view: candidate links plus the BGP-preferred home link."""

    profile: ASProfile
    #: direct + indirect links this AS's traffic may use
    candidate_links: list[str]
    #: the link BGP best-path selection prefers (egress symmetry anchor)
    home_link: str
    units: list[MappingUnit] = field(default_factory=list)

    def links_of(self, topology: ISPTopology) -> list[Link]:
        return [topology.links[link_id] for link_id in self.candidate_links]


def candidate_links_for(
    topology: ISPTopology, profile: ASProfile
) -> list[str]:
    """Which ISP links can carry this AS's traffic inbound.

    Directly connected ASes use their own links; everyone can addition-
    ally arrive over transit interconnects (that is what makes indirect
    entry — and §5.6 violations — possible at all).
    """
    direct = [link.link_id for link in topology.links_to_asn(profile.asn)]
    transit = [
        link.link_id
        for link in topology.links.values()
        if link.link_type is LinkType.TRANSIT and link.neighbor_asn != profile.asn
    ]
    if direct:
        return direct + transit
    return transit


def build_units(
    topology: ISPTopology,
    profiles: dict[int, ASProfile],
    config: UnitConfig | None = None,
    overrides: dict[int, UnitConfig] | None = None,
    seed: int = 11,
) -> dict[int, ASIngressModel]:
    """Carve every AS's blocks into mapping units with initial state.

    *overrides* supplies per-ASN :class:`UnitConfig` replacements — the
    scenarios use this to give tier-1, TOP5 and tail ASes the distinct
    symmetry/violation behaviour the paper reports per group.
    """
    base_config = config or UnitConfig()
    overrides = overrides or {}
    rng = random.Random(seed)
    models: dict[int, ASIngressModel] = {}

    for asn, profile in profiles.items():
        config = overrides.get(asn, base_config)
        candidates = candidate_links_for(topology, profile)
        if not candidates:
            raise ValueError(f"AS{asn} has no possible ingress links")
        direct = [link.link_id for link in topology.links_to_asn(asn)]
        home = direct[0] if direct else candidates[0]
        model = ASIngressModel(
            profile=profile, candidate_links=candidates, home_link=home
        )

        for version in (IPV4, IPV6):
            family_units: list[MappingUnit] = []
            for block in profile.blocks:
                if block.version != version:
                    continue
                family_units.extend(
                    _carve_block(block, asn, candidates, home, config, rng)
                )
                if len(family_units) >= config.max_units_per_as:
                    family_units = family_units[: config.max_units_per_as]
                    break
            model.units.extend(family_units)

        total_weight = sum(unit.weight for unit in model.units)
        if total_weight > 0:
            for unit in model.units:
                unit.weight /= total_weight
        models[asn] = model
    return models


def _carve_block(
    block: Prefix,
    asn: int,
    candidates: list[str],
    home: str,
    config: UnitConfig,
    rng: random.Random,
) -> list[MappingUnit]:
    """Cut one allocation block into units of mixed sizes.

    IPv4 blocks carve into /20-/26 units with /28 source slots; IPv6
    blocks carve into /40-/46 units with /48 slots — each family's slot
    matches its ``cidr_max`` masking granularity.
    """
    units: list[MappingUnit] = []
    cursor = block.value
    end = block.value + block.num_addresses
    if block.version == IPV4:
        masks = list(range(config.min_masklen, config.max_masklen + 1))
        weights = list(config.mask_weights[: len(masks)])
        weights += [1.0] * (len(masks) - len(weights))
        slot_size = 16  # /28 slots
    else:
        masks = list(range(config.v6_min_masklen, config.v6_max_masklen + 1))
        weights = [1.0] * len(masks)
        slot_size = 1 << 80  # /48 slots
    previous_primary: Optional[str] = None
    while cursor < end and len(units) < config.max_units_per_as:
        masklen = rng.choices(masks, weights)[0]
        masklen = max(masklen, block.masklen)
        unit_prefix = Prefix.from_ip(cursor, masklen, block.version)
        if unit_prefix.value != cursor:
            # Align the cursor to this mask size by shrinking the unit.
            masklen = masks[-1]
            unit_prefix = Prefix.from_ip(cursor, masklen, block.version)
        if unit_prefix.last_value >= end:
            break
        if (
            previous_primary is not None
            and rng.random() < config.spatial_coherence
        ):
            primary = previous_primary
        elif rng.random() < config.symmetry_probability:
            primary = home
        else:
            primary = rng.choice(candidates)
        previous_primary = primary
        is_elephant = rng.random() < config.elephant_fraction
        if is_elephant:
            remap_probability = 0.0
            weight = rng.uniform(4.0, 12.0)
        else:
            remap_probability = rng.uniform(*config.churny_remap_range)
            weight = rng.lognormvariate(0.0, 1.0)
            if masklen >= 25:
                # fine units are CDN server blocks pinned to a site;
                # they move far less often than whole datacenter blocks,
                # so /24s rarely end up mixing ingresses (Fig. 3)
                remap_probability *= 0.15
        secondary_link = None
        secondary_share = 0.0
        if len(candidates) > 1 and rng.random() < config.multi_ingress_fraction:
            others = [link for link in candidates if link != primary]
            secondary_link = rng.choice(others)
            secondary_share = rng.uniform(*config.secondary_share_range)
        n_slots = rng.randint(*config.slots_per_unit)
        max_slot = unit_prefix.num_addresses // slot_size
        slots = tuple(
            sorted(rng.sample(range(max_slot), k=min(n_slots, max_slot)))
        )
        units.append(
            MappingUnit(
                prefix=unit_prefix,
                asn=asn,
                weight=weight,
                primary_link=primary,
                secondary_link=secondary_link,
                secondary_share=secondary_share,
                remap_probability=remap_probability,
                active_slots=slots,
                slot_size=slot_size,
                home_affinity=config.symmetry_probability,
            )
        )
        cursor = unit_prefix.last_value + 1
    return units
