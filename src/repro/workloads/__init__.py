"""Synthetic workload substrate: address plan, mapping units, traffic, events."""

from .address_space import AddressPlan, ASProfile, calibrate_zipf_exponent, zipf_weights
from .diurnal import DiurnalModel, hour_of_day
from .events import (
    EventSchedule,
    LoadBalanceEvent,
    MaintenanceEvent,
    RemapEvent,
    same_pop_fallback,
)
from .mapping import ASIngressModel, MappingUnit, UnitConfig, build_units, candidate_links_for
from .scenarios import (
    SCALED_PARAMS,
    Scenario,
    default_scenario,
    dualstack_scenario,
    events_scenario,
    load_balancing_scenario,
    longitudinal_scenario,
    reaction_scenario,
    violations_scenario,
)
from .traffic import TrafficConfig, TrafficGenerator

__all__ = [
    "ASIngressModel",
    "ASProfile",
    "AddressPlan",
    "DiurnalModel",
    "EventSchedule",
    "LoadBalanceEvent",
    "MaintenanceEvent",
    "MappingUnit",
    "RemapEvent",
    "SCALED_PARAMS",
    "Scenario",
    "TrafficConfig",
    "TrafficGenerator",
    "UnitConfig",
    "build_units",
    "calibrate_zipf_exponent",
    "default_scenario",
    "dualstack_scenario",
    "events_scenario",
    "load_balancing_scenario",
    "longitudinal_scenario",
    "reaction_scenario",
    "violations_scenario",
    "candidate_links_for",
    "hour_of_day",
    "same_pop_fallback",
    "zipf_weights",
]
