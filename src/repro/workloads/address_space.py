"""Address-space allocation for the synthetic Internet.

The paper's traffic is dominated by a handful of hypergiants: the top 5
ASes carry 52 % of the ingress volume and the top 20 carry 80 % (§5.1).
This module allocates disjoint IPv4 (and optionally IPv6) blocks to a
population of source ASes and assigns them Zipf-like traffic weights
calibrated to those two published anchor points.

The allocation is the ground truth the whole evaluation pivots on:
BGP announcements, traffic generation and the violation monitor all
derive from the same :class:`AddressPlan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..core.iputil import IPV4, IPV6, Prefix

__all__ = ["ASProfile", "AddressPlan", "zipf_weights", "calibrate_zipf_exponent"]


@dataclass(frozen=True)
class ASProfile:
    """One source AS: identity, address blocks and behavioural class."""

    asn: int
    name: str
    #: address blocks originated by this AS
    blocks: tuple[Prefix, ...]
    #: relative traffic weight (normalized by :class:`AddressPlan`)
    weight: float
    #: CDNs remap users to servers on demand -> diurnal ingress churn
    is_cdn: bool = False
    #: tier-1 networks are subject to the §5.6 peering-agreement monitor
    is_tier1: bool = False
    #: hypergiants hold direct PNIs into the ISP
    is_hypergiant: bool = False

    def total_addresses(self) -> int:
        return sum(block.num_addresses for block in self.blocks)


def zipf_weights(count: int, exponent: float) -> list[float]:
    """Normalized Zipf weights ``i^-exponent`` for ranks 1..count."""
    if count <= 0:
        raise ValueError("count must be positive")
    raw = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    total = sum(raw)
    return [weight / total for weight in raw]


def calibrate_zipf_exponent(
    count: int,
    top_n: int = 5,
    target_share: float = 0.52,
    tolerance: float = 1e-4,
) -> float:
    """Find the Zipf exponent whose top-*n* share hits *target_share*.

    Used to anchor the synthetic AS popularity at the paper's "TOP5 =
    52 % of volume" observation.  Solved by bisection; the share is
    monotone in the exponent.
    """
    if not 0 < target_share < 1:
        raise ValueError("target_share must be in (0, 1)")
    if top_n >= count:
        raise ValueError("top_n must be smaller than count")
    low, high = 0.01, 10.0
    for __ in range(200):
        mid = (low + high) / 2.0
        weights = zipf_weights(count, mid)
        share = sum(weights[:top_n])
        if abs(share - target_share) < tolerance:
            return mid
        if share < target_share:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


@dataclass
class AddressPlan:
    """Disjoint block allocation plus traffic weights for all source ASes."""

    profiles: dict[int, ASProfile] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        hypergiant_asns: tuple[int, ...],
        peer_asns: tuple[int, ...],
        tier1_asns: tuple[int, ...] = (),
        cdn_asns: tuple[int, ...] = (),
        block_masklen: int = 12,
        blocks_per_hypergiant: int = 2,
        top5_share: float = 0.52,
        include_ipv6: bool = False,
    ) -> "AddressPlan":
        """Carve sequential IPv4 blocks and calibrate Zipf weights.

        ASes are ranked hypergiants first (they are the top talkers by
        construction), then tier-1s, then peers; IPv4 blocks are carved
        sequentially from 11.0.0.0 upward so all allocations are
        disjoint by construction.
        """
        ordered = list(dict.fromkeys(
            tuple(hypergiant_asns) + tuple(tier1_asns) + tuple(peer_asns)
        ))
        exponent = calibrate_zipf_exponent(
            len(ordered), top_n=min(5, len(ordered) - 1), target_share=top5_share
        )
        weights = zipf_weights(len(ordered), exponent)

        plan = cls()
        cursor = 11 << 24  # start at 11.0.0.0, clear of special-use space
        cdn_set = set(cdn_asns) or set(hypergiant_asns[:2])
        for rank, asn in enumerate(ordered):
            is_hyper = asn in set(hypergiant_asns)
            n_blocks = blocks_per_hypergiant if is_hyper else 1
            blocks = []
            for __ in range(n_blocks):
                block = Prefix.from_ip(cursor, block_masklen, IPV4)
                if block.value != cursor:
                    raise AssertionError("allocation cursor misaligned")
                blocks.append(block)
                cursor += block.num_addresses
            if include_ipv6:
                # one /40 per AS under a documentation-style /24 super-block
                v6_value = (0x2A << 120) | (rank << 88)
                blocks.append(Prefix.from_ip(v6_value, 40, IPV6))
            plan.profiles[asn] = ASProfile(
                asn=asn,
                name=f"AS{asn}",
                blocks=tuple(blocks),
                weight=weights[rank],
                is_cdn=asn in cdn_set,
                is_tier1=asn in set(tier1_asns),
                is_hypergiant=is_hyper,
            )
        return plan

    # -- queries ------------------------------------------------------------

    def asns_by_weight(self) -> list[int]:
        """ASNs ordered by descending traffic weight."""
        return sorted(
            self.profiles, key=lambda asn: -self.profiles[asn].weight
        )

    def top_asns(self, count: int) -> list[int]:
        return self.asns_by_weight()[:count]

    def top_share(self, count: int) -> float:
        """Combined traffic share of the top-*count* ASes."""
        ordered = self.asns_by_weight()
        total = sum(profile.weight for profile in self.profiles.values())
        return sum(self.profiles[asn].weight for asn in ordered[:count]) / total

    def owner_of(self, ip_value: int, version: int = IPV4) -> Optional[int]:
        """The AS whose allocation contains an address (linear scan)."""
        for profile in self.profiles.values():
            for block in profile.blocks:
                if block.version == version and block.contains_ip(ip_value):
                    return profile.asn
        return None

    def blocks(self, version: int = IPV4) -> Iterator[tuple[int, Prefix]]:
        """Yield ``(asn, block)`` pairs of one family."""
        for profile in self.profiles.values():
            for block in profile.blocks:
                if block.version == version:
                    yield profile.asn, block
